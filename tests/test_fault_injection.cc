/**
 * @file
 * Hardware-fault-injection campaign: random single-bit DRAM errors rain
 * down on a full SafeMem run. The controller must correct them all
 * transparently, the watch machinery must keep telling access faults
 * from real errors, and detection results must be unaffected.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "workloads/driver.h"
#include "workloads/null_tool.h"

#include "alloc/heap_allocator.h"
#include "safemem/safemem.h"
#include "safemem/sampled.h"
#include "safemem/watch_manager.h"
#include "trace/trace.h"

namespace safemem {
namespace {

TEST(FaultInjection, SingleBitErrorsAreTransparentToDetection)
{
    Machine machine(MachineConfig{16u << 20, CacheConfig{64, 4}, 64});
    machine.kernel().setPanicOnHardwareError(false);
    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();
    backend.installScrubHooks();

    SafeMemConfig config;
    config.warmupTime = 100'000;
    config.checkingPeriod = 10'000;
    config.minStableTime = 50'000;
    config.aleakLiveThreshold = 24;
    config.aleakRecentWindow = 2'000'000;
    config.leakReportThreshold = 500'000;
    SafeMemTool tool(machine, allocator, backend, config);
    ShadowStack stack;
    Rng rng(31);

    // A leaky server, peppered with single-bit upsets all over DRAM —
    // including, with decent probability, under guard lines and freed
    // buffers that are currently scrambled.
    std::uint64_t flips = 0;
    for (int request = 0; request < 1200; ++request) {
        FrameGuard frame(stack, 0x880000);
        VirtAddr buffer = tool.toolAlloc(256, stack, 7 | (1ULL << 63));
        machine.store<std::uint64_t>(buffer, request);
        machine.compute(4'000);
        if (rng.chance(0.9)) {
            machine.load<std::uint64_t>(buffer);
            tool.toolFree(buffer);
        } // else: leaked

        if (request % 3 == 0) {
            // Strike the low physical frames — where the heap lives —
            // so the upsets actually land in data the program re-reads.
            PhysAddr victim =
                alignDown(rng.next() % (256u * 1024), kEccGroupSize);
            machine.physicalMemory().flipDataBit(
                victim, static_cast<int>(rng.range(0, 63)));
            ++flips;
        }
        if (request % 16 == 15) {
            // Cache pressure forces refills, exposing stored errors to
            // the controller's read path.
            machine.cache().flushAll();
        }
    }
    tool.finish();

    // The run survived; the leak was still found; every reported
    // corruption (if any) would have been a false positive — there must
    // be none, since single-bit errors are invisible to the detectors.
    EXPECT_GE(flips, 390u);
    EXPECT_GE(tool.leakDetector().reports().size(), 1u);
    EXPECT_TRUE(tool.corruptionDetector().reports().empty());
    EXPECT_GT(machine.controller().stats().get("single_bit_corrected"),
              0u) << "some flips were re-read and corrected";
}

TEST(FaultInjection, MultiBitUnderWatchIsRepairedFromPrivateCopy)
{
    Machine machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 64});
    machine.kernel().setPanicOnHardwareError(false);
    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();

    SafeMemConfig config;
    config.detectLeaks = false;
    SafeMemTool tool(machine, allocator, backend, config);
    ShadowStack stack;

    VirtAddr buffer = tool.toolAlloc(128, stack, 1);
    machine.store<std::uint64_t>(buffer, 0x1111ULL);
    tool.toolFree(buffer); // freed body watched (scrambled)

    // A multi-bit hardware error strikes the scrambled freed buffer.
    PhysAddr frame =
        machine.kernel().translate(alignDown(buffer, kPageSize) +
                                   kPageSize - 1) -
        (kPageSize - 1);
    PhysAddr line = frame + (alignDown(buffer, kCacheLineSize) -
                             alignDown(buffer, kPageSize));
    machine.physicalMemory().flipDataBit(line, 2);
    machine.physicalMemory().flipDataBit(line, 9);

    // A dangling access hits the line: SafeMem must classify this as a
    // hardware error (signature mismatch), repair from its private
    // copy, and NOT report a use-after-free for it.
    EXPECT_EQ(machine.load<std::uint64_t>(buffer), 0x1111ULL);
    EXPECT_TRUE(tool.corruptionDetector().reports().empty());
    EXPECT_EQ(backend.stats().get("hardware_errors_detected"), 1u);
    tool.finish();
}

TEST(FaultInjection, HardwareRepairBypassesTheCacheWritePath)
{
    // Regression: the repair of a hardware error under a watch must go
    // through the controller's device-op path. Repairing with ordinary
    // cached writes write-allocates, and the read-for-ownership fill
    // pulls the still-corrupted line back through the controller — two
    // extra fills (and a second ECC fault) for this 128-byte region.
    Trace trace;
    MachineConfig machine_config{4u << 20, CacheConfig{16, 2}, 64};
    machine_config.trace = &trace;
    Machine machine(machine_config);
    machine.kernel().setPanicOnHardwareError(false);
    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();

    SafeMemConfig config;
    config.detectLeaks = false;
    SafeMemTool tool(machine, allocator, backend, config);
    ShadowStack stack;

    VirtAddr buffer = tool.toolAlloc(128, stack, 1);
    machine.store<std::uint64_t>(buffer, 0x2222ULL);
    tool.toolFree(buffer); // freed body watched (scrambled)

    PhysAddr line = machine.kernel().translate(buffer);
    machine.physicalMemory().flipDataBit(line, 2);
    machine.physicalMemory().flipDataBit(line, 9);

    std::uint64_t fills_before =
        machine.controller().stats().get("line_fills");
    EXPECT_EQ(machine.load<std::uint64_t>(buffer), 0x2222ULL);
    EXPECT_EQ(backend.stats().get("hardware_errors_detected"), 1u);
    // Exactly the faulted fill and the post-repair retry fill; the
    // cached-write repair added two write-allocate fills on top.
    EXPECT_EQ(machine.controller().stats().get("line_fills") -
                  fills_before, 2u);

    if (kTraceCompiledIn) {
        // The flight recorder shows the same thing structurally: no
        // controller fill (and no nested ECC interrupt) between the
        // hardware-fault classification and the end of the repair.
        bool in_repair = false;
        bool repaired = false;
        for (const TraceRecord &record : trace.records()) {
            if (record.event == TraceEvent::WatchFaultHardware) {
                in_repair = true;
            } else if (record.event == TraceEvent::WatchRepairDone) {
                in_repair = false;
                repaired = true;
            } else if (in_repair) {
                EXPECT_NE(record.event, TraceEvent::ControllerFill);
                EXPECT_NE(record.event, TraceEvent::KernelEccInterrupt);
            }
        }
        EXPECT_TRUE(repaired);
    }
    tool.finish();
}

TEST(FaultInjection, ScrubRaceKeepsParkScrubRestoreOrdering)
{
    // Multi-bit errors and watch churn race a short-period scrub. The
    // flight recorder must show every pass as a well-formed
    //   tick-begin -> park* -> scrub -> restore* -> tick-end
    // bracket, with no ECC interrupt delivered inside either hook
    // window (parked lines are unscrambled, so the scrubber never
    // faults on a watch).
    if (!kTraceCompiledIn)
        GTEST_SKIP() << "needs compiled-in trace emit sites";

    Trace trace(1u << 18);
    MachineConfig machine_config{8u << 20, CacheConfig{16, 2}, 64};
    machine_config.trace = &trace;
    Machine machine(machine_config);
    machine.kernel().setPanicOnHardwareError(false);
    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();
    backend.installScrubHooks();

    SafeMemConfig config;
    config.detectLeaks = false;
    SafeMemTool tool(machine, allocator, backend, config);
    ShadowStack stack;
    Rng rng(97);

    machine.kernel().enableScrubbing(20'000);

    for (int round = 0; round < 200; ++round) {
        FrameGuard frame(stack, 0x990000);
        VirtAddr buffer = tool.toolAlloc(128, stack, 3);
        machine.store<std::uint64_t>(buffer,
                                     static_cast<std::uint64_t>(round));
        machine.compute(rng.range(200, 2'000));
        tool.toolFree(buffer); // freed body watched: churn across scrubs

        if (round % 7 == 3) {
            // A multi-bit error strikes the scrambled freed body; the
            // dangling access classifies it as hardware and repairs it.
            PhysAddr line = machine.kernel().translate(buffer);
            machine.physicalMemory().flipDataBit(line, 2);
            machine.physicalMemory().flipDataBit(line, 9);
            machine.load<std::uint64_t>(buffer);
        }
    }
    tool.finish();
    machine.kernel().disableScrubbing();

    ASSERT_EQ(trace.dropped(), 0u)
        << "ring too small to audit the whole run";

    enum Phase { Outside, PreScrubHook, Scrubbing, PostScrubHook };
    int phase = Outside;
    std::uint64_t parks = 0;
    std::uint64_t restores = 0;
    std::uint64_t passes = 0;
    std::uint64_t repairs = 0;
    for (const TraceRecord &record : trace.records()) {
        switch (record.event) {
          case TraceEvent::KernelScrubTickBegin:
            EXPECT_EQ(phase, Outside);
            phase = PreScrubHook;
            break;
          case TraceEvent::ControllerScrubBegin:
            EXPECT_EQ(phase, PreScrubHook);
            phase = Scrubbing;
            break;
          case TraceEvent::ControllerScrubEnd:
            EXPECT_EQ(phase, Scrubbing);
            phase = PostScrubHook;
            break;
          case TraceEvent::KernelScrubTickEnd:
            EXPECT_EQ(phase, PostScrubHook);
            phase = Outside;
            ++passes;
            break;
          case TraceEvent::WatchScrubPark:
            EXPECT_EQ(phase, PreScrubHook);
            ++parks;
            break;
          case TraceEvent::WatchScrubRestore:
            EXPECT_EQ(phase, PostScrubHook);
            ++restores;
            break;
          case TraceEvent::ControllerInterrupt:
          case TraceEvent::KernelEccInterrupt:
            EXPECT_NE(phase, PreScrubHook)
                << "interrupt inside the pre-scrub hook";
            EXPECT_NE(phase, PostScrubHook)
                << "interrupt inside the post-scrub hook";
            break;
          case TraceEvent::WatchRepairDone:
            ++repairs;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(phase, Outside);
    EXPECT_GE(passes, 2u);
    EXPECT_GE(parks, 1u);
    EXPECT_EQ(parks, restores);
    EXPECT_GE(repairs, 1u);
    EXPECT_EQ(backend.stats().get("hardware_errors_detected"), repairs);
}

TEST(FaultInjection, BankBoundaryWatchSurvivesPerBankScrub)
{
    // A watched region whose frames straddle two memory banks races the
    // per-bank scrubber: each of its banks parks and restores it on its
    // own schedule. The flight recorder must show the region parked in
    // exactly its banks' pass windows (a single-bank control region in
    // exactly one), every park matched by a restore, and the watch still
    // armed — with its data intact — after the churn.
    if (!kTraceCompiledIn)
        GTEST_SKIP() << "needs compiled-in trace emit sites";

    Trace trace(1u << 18);
    // 1 MiB / 4 banks = 64 pages per bank: a 70-page region overflows
    // the home bank, so somewhere inside it two adjacent virtual pages
    // translate to frames in different banks.
    MachineConfig machine_config{1u << 20, CacheConfig{16, 2}, 64};
    machine_config.banks = 4;
    machine_config.trace = &trace;
    Machine machine(machine_config);
    machine.kernel().setPanicOnHardwareError(false);
    EccWatchManager manager(machine);
    manager.installFaultHandler();
    manager.installScrubHooks();

    int callbacks = 0;
    VirtAddr callback_base = 0;
    manager.setFaultCallback([&](VirtAddr base, WatchKind, std::uint64_t,
                                 VirtAddr, bool) {
        ++callbacks;
        callback_base = base;
    });

    VirtAddr region = machine.kernel().mapRegion(70 * kPageSize);
    MemoryController &controller = machine.controller();
    Kernel &kernel = machine.kernel();
    auto bank_of_page = [&](int page) {
        std::optional<PhysAddr> frame =
            kernel.peekTranslate(region + page * kPageSize);
        EXPECT_TRUE(frame.has_value());
        return controller.bankOf(*frame);
    };
    int boundary = -1;
    for (int page = 0; page + 1 < 70; ++page) {
        if (bank_of_page(page) != bank_of_page(page + 1)) {
            boundary = page;
            break;
        }
    }
    ASSERT_GE(boundary, 0) << "no bank boundary inside the region";
    unsigned bank_lo = bank_of_page(boundary);
    unsigned bank_hi = bank_of_page(boundary + 1);

    // The spanning region: one cache line either side of the boundary.
    VirtAddr cross = region + (boundary + 1) * kPageSize;
    machine.store<std::uint64_t>(cross - 64, 0xfeedULL);
    machine.store<std::uint64_t>(cross, 0xfaceULL);
    manager.watch(cross - 64, 128, WatchKind::FreedBuffer, 1);
    // The control region: wholly inside the first page's bank.
    unsigned bank_control = bank_of_page(0);
    manager.watch(region, 64, WatchKind::LeakSuspect, 2);

    // Churn far from the watches so the scrubber keeps firing on the
    // access path without ever tripping a watch.
    int churn_page = boundary > 6 ? 5 : boundary + 3;
    VirtAddr churn = region + churn_page * kPageSize;
    machine.kernel().enableScrubbing(20'000);
    for (int round = 0; round < 400; ++round) {
        machine.store<std::uint64_t>(churn + (round % 64) * 64,
                                     static_cast<std::uint64_t>(round));
        machine.load<std::uint64_t>(churn + (round % 64) * 64);
        machine.compute(500);
    }
    machine.kernel().disableScrubbing();

    ASSERT_EQ(trace.dropped(), 0u)
        << "ring too small to audit the whole run";

    // Replay: track which bank's pass window we are in and demand each
    // region parks in exactly its banks' windows.
    std::uint64_t passes_by_bank[kMaxMemoryBanks] = {};
    std::uint64_t cross_parks = 0;
    std::uint64_t cross_restores = 0;
    std::uint64_t control_parks = 0;
    std::uint64_t control_restores = 0;
    int current_bank = -1;
    for (const TraceRecord &record : trace.records()) {
        switch (record.event) {
          case TraceEvent::KernelScrubTickBegin:
            EXPECT_EQ(current_bank, -1) << "nested bank passes";
            current_bank = static_cast<int>(record.a);
            break;
          case TraceEvent::KernelScrubTickEnd:
            EXPECT_EQ(current_bank, static_cast<int>(record.a));
            ++passes_by_bank[record.a];
            current_bank = -1;
            break;
          case TraceEvent::ControllerScrubBegin:
            // The pass inside the bracket scrubs the bracket's bank.
            ASSERT_NE(current_bank, -1);
            EXPECT_EQ(record.c, static_cast<std::uint64_t>(current_bank));
            break;
          case TraceEvent::WatchScrubPark:
            ASSERT_NE(current_bank, -1) << "park outside a pass window";
            if (record.a == cross - 64) {
                EXPECT_TRUE(current_bank == static_cast<int>(bank_lo) ||
                            current_bank == static_cast<int>(bank_hi))
                    << "spanning region parked by foreign bank "
                    << current_bank;
                ++cross_parks;
            } else if (record.a == region) {
                EXPECT_EQ(current_bank, static_cast<int>(bank_control))
                    << "single-bank region parked by foreign bank";
                ++control_parks;
            }
            break;
          case TraceEvent::WatchScrubRestore:
            ASSERT_NE(current_bank, -1);
            if (record.a == cross - 64)
                ++cross_restores;
            else if (record.a == region)
                ++control_restores;
            break;
          case TraceEvent::ControllerInterrupt:
          case TraceEvent::KernelEccInterrupt:
            EXPECT_EQ(current_bank, -1)
                << "ECC interrupt inside bank " << current_bank
                << "'s scrub pass";
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(current_bank, -1) << "unclosed bank pass bracket";

    // The spanning region rides both of its banks' schedules; the
    // control region only its own. Pass counts make this exact.
    EXPECT_GE(passes_by_bank[bank_lo], 2u);
    EXPECT_EQ(cross_parks, passes_by_bank[bank_lo] + passes_by_bank[bank_hi]);
    EXPECT_EQ(control_parks, passes_by_bank[bank_control]);
    EXPECT_EQ(cross_parks, cross_restores);
    EXPECT_EQ(control_parks, control_restores);

    // After all that churn both watches are still armed and the data
    // under them survived every park/restore cycle.
    EXPECT_TRUE(manager.isWatched(cross - 64));
    EXPECT_TRUE(manager.isWatched(region));
    EXPECT_EQ(machine.load<std::uint64_t>(cross), 0xfaceULL);
    EXPECT_EQ(callbacks, 1);
    EXPECT_EQ(callback_base, cross - 64);
}

TEST(FaultInjection, MultiBitOnPlainMemoryPanicsWithoutSafeMem)
{
    // Stock-OS behaviour (paper §2.1): an uncorrectable error with no
    // registered handler takes the kernel down.
    Machine machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 64});
    VirtAddr buffer = machine.kernel().mapRegion(kPageSize);
    machine.store<std::uint64_t>(buffer, 1);
    machine.cache().flushAll();
    PhysAddr frame = machine.kernel().translate(buffer + kPageSize - 1) -
                     (kPageSize - 1);
    machine.physicalMemory().flipDataBit(frame, 3);
    machine.physicalMemory().flipDataBit(frame, 40);
    EXPECT_THROW(machine.load<std::uint64_t>(buffer), PanicError);
}

TEST(FaultInjection, SampledTenantChurnRacesPerBankScrubCleanly)
{
    // Sparse sampled watches on a banked machine race the per-bank
    // scrubber while tenants come and go: three SampledSafeMem tenants
    // allocate and free under scrub pressure, one finishes and exits
    // mid-run, and the flight recorder must show every scrub park
    // matched by a restore (or an explicit cancel), with no watch left
    // anywhere once the last tenant is gone.
    if (!kTraceCompiledIn)
        GTEST_SKIP() << "needs compiled-in trace emit sites";

    Trace trace(1u << 18);
    MachineConfig machine_config{8u << 20, CacheConfig{32, 4}, 64};
    machine_config.banks = 4;
    machine_config.trace = &trace;
    Machine machine(machine_config);
    machine.kernel().setPanicOnHardwareError(false);
    Kernel &kernel = machine.kernel();

    struct Tenant
    {
        Pid pid = 0;
        std::unique_ptr<HeapAllocator> allocator;
        std::unique_ptr<EccWatchManager> backend;
        std::unique_ptr<SampledSafeMemTool> tool;
        std::vector<VirtAddr> live;
    };

    // Sparse sampling: most traffic bypasses the detectors, so the
    // scrubber races a thin, shifting set of guard and freed-body
    // watches instead of a dense stable one. The default leak config
    // stays in warm-up for this run length — by design; the corruption
    // watches are the racing population.
    SafeMemConfig tool_config;
    tool_config.sampleRate = 0.125;
    tool_config.sampleSeed = 42;

    std::vector<Tenant> tenants(3);
    for (Tenant &tenant : tenants) {
        tenant.pid = kernel.createProcess();
        kernel.setCurrentProcess(tenant.pid);
        tenant.allocator = std::make_unique<HeapAllocator>(machine);
        tenant.backend = std::make_unique<EccWatchManager>(machine);
        tenant.backend->installFaultHandler();
        tenant.backend->installScrubHooks();
        tenant.tool = std::make_unique<SampledSafeMemTool>(
            machine, *tenant.allocator, *tenant.backend, tool_config,
            tenant.pid);
    }

    auto retire = [&](Tenant &tenant) {
        kernel.setCurrentProcess(tenant.pid);
        for (VirtAddr addr : tenant.live)
            tenant.tool->toolFree(addr);
        tenant.live.clear();
        tenant.tool->finish();
        EXPECT_EQ(tenant.backend->regionCount(), 0u)
            << "tenant " << tenant.pid << " leaked watches";
        kernel.exitProcess(tenant.pid);
    };

    ShadowStack stack;
    Rng rng(97);
    kernel.enableScrubbing(15'000);
    std::size_t active = tenants.size();
    for (int round = 0; round < 900; ++round) {
        // Tenant 2 leaves a third of the way in; its watches must not
        // outlive it and the survivors must keep scrubbing cleanly.
        if (round == 300)
            retire(tenants[--active]);

        Tenant &tenant = tenants[round % active];
        kernel.setCurrentProcess(tenant.pid);
        std::size_t size = rng.range(32, 512);
        VirtAddr addr = tenant.tool->toolAlloc(size, stack, 11);
        machine.store<std::uint64_t>(addr, rng.next());
        tenant.live.push_back(addr);
        if (tenant.live.size() > 12 || (rng.chance(0.4) &&
                                        !tenant.live.empty())) {
            std::size_t victim = rng.range(0, tenant.live.size() - 1);
            machine.load<std::uint64_t>(tenant.live[victim]);
            tenant.tool->toolFree(tenant.live[victim]);
            tenant.live[victim] = tenant.live.back();
            tenant.live.pop_back();
        }
        machine.compute(500);
    }
    while (active > 0)
        retire(tenants[--active]);
    kernel.disableScrubbing();

    EXPECT_EQ(kernel.totalWatchedLineCount(), 0u)
        << "watches survived their owners";
    for (const Tenant &tenant : tenants) {
        EXPECT_TRUE(tenant.tool->corruptionDetector().reports().empty())
            << "spurious corruption report for tenant " << tenant.pid;
        EXPECT_GT(tenant.tool->samplingStats().get("unsampled_allocs"),
                  tenant.tool->samplingStats().get("sampled_allocs"))
            << "rate 1/8 must leave most traffic unmonitored";
    }

    // Replay the recorder: every park window closes — a parked region
    // is either restored by the post-scrub hook or explicitly cancelled
    // by an unwatch — and the scrubber actually met the watches.
    ASSERT_EQ(trace.dropped(), 0u)
        << "ring too small to audit the whole run";
    std::uint64_t parks = 0, restores = 0, cancels = 0, passes = 0;
    for (const TraceRecord &record : trace.records()) {
        switch (record.event) {
          case TraceEvent::WatchScrubPark: ++parks; break;
          case TraceEvent::WatchScrubRestore: ++restores; break;
          case TraceEvent::WatchScrubCancel: ++cancels; break;
          case TraceEvent::KernelScrubTickEnd: ++passes; break;
          default: break;
        }
    }
    EXPECT_GE(passes, 4u) << "scrubber never completed a bank pass";
    EXPECT_GE(parks, 1u) << "no watch ever raced a scrub pass";
    EXPECT_EQ(parks, restores + cancels);
}

} // namespace
} // namespace safemem
