/**
 * @file
 * Hardware-fault-injection campaign: random single-bit DRAM errors rain
 * down on a full SafeMem run. The controller must correct them all
 * transparently, the watch machinery must keep telling access faults
 * from real errors, and detection results must be unaffected.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "workloads/driver.h"
#include "workloads/null_tool.h"

#include "alloc/heap_allocator.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

namespace safemem {
namespace {

TEST(FaultInjection, SingleBitErrorsAreTransparentToDetection)
{
    Machine machine(MachineConfig{16u << 20, CacheConfig{64, 4}, 64});
    machine.kernel().setPanicOnHardwareError(false);
    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();
    backend.installScrubHooks();

    SafeMemConfig config;
    config.warmupTime = 100'000;
    config.checkingPeriod = 10'000;
    config.minStableTime = 50'000;
    config.aleakLiveThreshold = 24;
    config.aleakRecentWindow = 2'000'000;
    config.leakReportThreshold = 500'000;
    SafeMemTool tool(machine, allocator, backend, config);
    ShadowStack stack;
    Rng rng(31);

    // A leaky server, peppered with single-bit upsets all over DRAM —
    // including, with decent probability, under guard lines and freed
    // buffers that are currently scrambled.
    std::uint64_t flips = 0;
    for (int request = 0; request < 1200; ++request) {
        FrameGuard frame(stack, 0x880000);
        VirtAddr buffer = tool.toolAlloc(256, stack, 7 | (1ULL << 63));
        machine.store<std::uint64_t>(buffer, request);
        machine.compute(4'000);
        if (rng.chance(0.9)) {
            machine.load<std::uint64_t>(buffer);
            tool.toolFree(buffer);
        } // else: leaked

        if (request % 3 == 0) {
            // Strike the low physical frames — where the heap lives —
            // so the upsets actually land in data the program re-reads.
            PhysAddr victim =
                alignDown(rng.next() % (256u * 1024), kEccGroupSize);
            machine.physicalMemory().flipDataBit(
                victim, static_cast<int>(rng.range(0, 63)));
            ++flips;
        }
        if (request % 16 == 15) {
            // Cache pressure forces refills, exposing stored errors to
            // the controller's read path.
            machine.cache().flushAll();
        }
    }
    tool.finish();

    // The run survived; the leak was still found; every reported
    // corruption (if any) would have been a false positive — there must
    // be none, since single-bit errors are invisible to the detectors.
    EXPECT_GE(flips, 390u);
    EXPECT_GE(tool.leakDetector().reports().size(), 1u);
    EXPECT_TRUE(tool.corruptionDetector().reports().empty());
    EXPECT_GT(machine.controller().stats().get("single_bit_corrected"),
              0u) << "some flips were re-read and corrected";
}

TEST(FaultInjection, MultiBitUnderWatchIsRepairedFromPrivateCopy)
{
    Machine machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 64});
    machine.kernel().setPanicOnHardwareError(false);
    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();

    SafeMemConfig config;
    config.detectLeaks = false;
    SafeMemTool tool(machine, allocator, backend, config);
    ShadowStack stack;

    VirtAddr buffer = tool.toolAlloc(128, stack, 1);
    machine.store<std::uint64_t>(buffer, 0x1111ULL);
    tool.toolFree(buffer); // freed body watched (scrambled)

    // A multi-bit hardware error strikes the scrambled freed buffer.
    PhysAddr frame =
        machine.kernel().translate(alignDown(buffer, kPageSize) +
                                   kPageSize - 1) -
        (kPageSize - 1);
    PhysAddr line = frame + (alignDown(buffer, kCacheLineSize) -
                             alignDown(buffer, kPageSize));
    machine.physicalMemory().flipDataBit(line, 2);
    machine.physicalMemory().flipDataBit(line, 9);

    // A dangling access hits the line: SafeMem must classify this as a
    // hardware error (signature mismatch), repair from its private
    // copy, and NOT report a use-after-free for it.
    EXPECT_EQ(machine.load<std::uint64_t>(buffer), 0x1111ULL);
    EXPECT_TRUE(tool.corruptionDetector().reports().empty());
    EXPECT_EQ(backend.stats().get("hardware_errors_detected"), 1u);
    tool.finish();
}

TEST(FaultInjection, MultiBitOnPlainMemoryPanicsWithoutSafeMem)
{
    // Stock-OS behaviour (paper §2.1): an uncorrectable error with no
    // registered handler takes the kernel down.
    Machine machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 64});
    VirtAddr buffer = machine.kernel().mapRegion(kPageSize);
    machine.store<std::uint64_t>(buffer, 1);
    machine.cache().flushAll();
    PhysAddr frame = machine.kernel().translate(buffer + kPageSize - 1) -
                     (kPageSize - 1);
    machine.physicalMemory().flipDataBit(frame, 3);
    machine.physicalMemory().flipDataBit(frame, 40);
    EXPECT_THROW(machine.load<std::uint64_t>(buffer), PanicError);
}

} // namespace
} // namespace safemem
