/**
 * @file
 * Tests for the 3-bit scramble signature (paper §2.2.2, Figure 2).
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "ecc/hamming_sec.h"
#include "ecc/hsiao_param.h"
#include "ecc/scramble.h"

namespace safemem {
namespace {

TEST(Scramble, PatternHasThreeDistinctBits)
{
    const ScramblePattern &p = defaultScramblePattern();
    EXPECT_NE(p.bits[0], p.bits[1]);
    EXPECT_NE(p.bits[1], p.bits[2]);
    EXPECT_NE(p.bits[0], p.bits[2]);
    EXPECT_EQ(__builtin_popcountll(p.mask()), 3);
}

TEST(Scramble, ApplyIsAnInvolution)
{
    const ScramblePattern &p = defaultScramblePattern();
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t v = rng.next();
        EXPECT_EQ(p.apply(p.apply(v)), v);
    }
}

TEST(Scramble, ScrambledWordIsUncorrectable)
{
    // The core guarantee: scrambled data against a stale check byte
    // must decode as an uncorrectable multi-bit fault, never as a
    // silently "corrected" single-bit error (paper §2.2.2, property 1).
    const EccCodec &code = defaultCodec();
    const ScramblePattern &p = defaultScramblePattern();
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t data = rng.next();
        std::uint8_t check = code.encode(data);
        EccDecodeResult result = code.decode(p.apply(data), check);
        EXPECT_EQ(result.status, EccDecodeStatus::Uncorrectable);
    }
}

TEST(Scramble, SearchAgreesWithDecoder)
{
    // Re-run the search and verify the returned triple against the
    // actual decoder for a spread of data values.
    const EccCodec &code = defaultCodec();
    std::optional<ScramblePattern> p = findScramblePositions(code);
    ASSERT_TRUE(p.has_value());
    for (std::uint64_t data : {0ULL, ~0ULL, 0x8000000000000001ULL}) {
        EccDecodeResult result =
            code.decode(p->apply(data), code.encode(data));
        EXPECT_EQ(result.status, EccDecodeStatus::Uncorrectable);
    }
}

TEST(Scramble, ViableTripleDecodesUncorrectableForEveryWord)
{
    // The search probes candidates through decode() itself (not a
    // syndrome-table shortcut), so the returned triple must hold for
    // *any* data content — the decode-probe rewrite of
    // looksCorrectable() is load-bearing here.
    const EccCodec &code = defaultCodec();
    std::optional<ScramblePattern> p = findScramblePositions(code);
    ASSERT_TRUE(p.has_value());
    Rng rng(0x5c2a3b1e);
    for (int i = 0; i < 256; ++i) {
        std::uint64_t data = rng.next();
        EccDecodeResult result =
            code.decode(p->apply(data), code.encode(data));
        ASSERT_EQ(result.status, EccDecodeStatus::Uncorrectable);
    }
}

TEST(Scramble, ParamHsiaoCodesHostSignaturesToo)
{
    // Any odd-weight-column Hsiao geometry keeps property 1: three odd
    // columns XOR to an odd-weight syndrome no column matches.
    for (int data_bits : {16, 32, 64}) {
        HsiaoParamCode code(data_bits);
        std::optional<ScramblePattern> p = findScramblePositions(code);
        ASSERT_TRUE(p.has_value()) << "d=" << data_bits;
        std::uint64_t data =
            0x1234567890abcdefULL &
            (data_bits == 64 ? ~0ULL : (1ULL << data_bits) - 1);
        EccDecodeResult result =
            code.decode(p->apply(data), code.encode(data));
        EXPECT_EQ(result.status, EccDecodeStatus::Uncorrectable);
    }
}

TEST(Scramble, PureSecHammingCannotHostASignature)
{
    // The campaign's headline negative result: classic Hamming 64/8
    // corrects every non-zero syndrome, so no bit triple is guaranteed
    // uncorrectable and the search must report failure rather than a
    // pattern that would silently corrupt watched data.
    HammingSecCode code;
    EXPECT_FALSE(findScramblePositions(code).has_value());
}

TEST(Scramble, NotEveryTripleWouldWork)
{
    // Sanity of the search itself: some bit triples alias to a single
    // correctable error (their column XOR matches another column), so
    // the search is load-bearing, not decorative.
    const EccCodec &code = defaultCodec();
    bool found_bad_triple = false;
    for (int a = 0; a < 64 && !found_bad_triple; ++a) {
        for (int b = a + 1; b < 64 && !found_bad_triple; ++b) {
            for (int c = b + 1; c < 64 && !found_bad_triple; ++c) {
                std::uint8_t syndrome = static_cast<std::uint8_t>(
                    code.column(a) ^ code.column(b) ^ code.column(c));
                for (int d = 0; d < 64; ++d) {
                    if (code.column(d) == syndrome) {
                        found_bad_triple = true;
                        break;
                    }
                }
            }
        }
    }
    EXPECT_TRUE(found_bad_triple);
}

} // namespace
} // namespace safemem
