/**
 * @file
 * Tests for PhysicalMemory and the ECC MemoryController.
 */

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/costs.h"
#include "common/logging.h"
#include "ecc/hamming.h"
#include "ecc/hsiao_param.h"
#include "ecc/scramble.h"
#include "mem/memory_controller.h"
#include "mem/physical_memory.h"

namespace safemem {
namespace {

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest() : memory(64 * 1024), controller(memory, clock)
    {
        controller.setInterruptHandler([this](const EccFaultInfo &info) {
            ++interrupts;
            lastFault = info;
        });
    }

    CycleClock clock;
    PhysicalMemory memory;
    MemoryController controller;
    int interrupts = 0;
    EccFaultInfo lastFault;
};

TEST_F(ControllerTest, EvictionEncodesEveryGroup)
{
    LineData line{};
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i)
        setLineWord(line, i, 0x1111111111111111ULL * (i + 1));
    controller.evictLine(128, line);

    const EccCodec &code = defaultCodec();
    for (std::size_t i = 0; i < kEccGroupsPerLine; ++i) {
        PhysAddr addr = 128 + i * kEccGroupSize;
        EXPECT_EQ(memory.readCheck(addr),
                  code.encode(memory.readWord(addr)));
    }
}

TEST_F(ControllerTest, FillReturnsWrittenData)
{
    LineData line{};
    setLineWord(line, 3, 0xabcdefULL);
    controller.evictLine(256, line);

    LineData out{};
    EXPECT_TRUE(controller.fillLine(256, out));
    EXPECT_EQ(lineWord(out, 3), 0xabcdefULL);
    EXPECT_EQ(interrupts, 0);
}

TEST_F(ControllerTest, FillChargesDramLatency)
{
    LineData out{};
    Cycles before = clock.now();
    controller.fillLine(0, out);
    EXPECT_EQ(clock.now() - before, kDramLineCycles);
}

TEST_F(ControllerTest, SingleBitErrorCorrectedAndHealed)
{
    LineData line{};
    setLineWord(line, 0, 0x123456789abcdef0ULL);
    controller.evictLine(0, line);
    memory.flipDataBit(0, 42);

    LineData out{};
    EXPECT_TRUE(controller.fillLine(0, out));
    EXPECT_EQ(lineWord(out, 0), 0x123456789abcdef0ULL);
    EXPECT_EQ(interrupts, 0);
    EXPECT_EQ(controller.stats().get("single_bit_corrected"), 1u);
    // Healed in place: a second fill sees clean memory.
    EXPECT_EQ(memory.readWord(0), 0x123456789abcdef0ULL);
}

TEST_F(ControllerTest, CheckBitOnlyErrorCorrectsTransparently)
{
    // Satellite of the correctedBit contract audit: a flipped *check*
    // bit decodes as CorrectedSingle with correctedBit in [64, 72) and
    // must ride the exact same transparent-correction path as a data
    // bit — correct fill data, no interrupt, stat bumped, storage
    // healed — without anything downstream treating 64+ as a data
    // index.
    LineData line{};
    setLineWord(line, 2, 0x0f0f0f0f0f0f0f0fULL);
    controller.evictLine(0, line);
    const PhysAddr addr = 2 * kEccGroupSize;
    const std::uint8_t good_check = memory.readCheck(addr);
    memory.flipCheckBit(addr, 6);

    LineData out{};
    EXPECT_TRUE(controller.fillLine(0, out));
    EXPECT_EQ(lineWord(out, 2), 0x0f0f0f0f0f0f0f0fULL);
    EXPECT_EQ(interrupts, 0);
    EXPECT_EQ(controller.stats().get("single_bit_corrected"), 1u);
    // Healed in place: the stored check byte is rewritten, so a second
    // fill decodes clean.
    EXPECT_EQ(memory.readCheck(addr), good_check);
    EXPECT_EQ(memory.readWord(addr), 0x0f0f0f0f0f0f0f0fULL);
}

TEST_F(ControllerTest, CustomCodecDrivesTheDatapath)
{
    // A controller built over a non-default codec encodes and decodes
    // with it: the check bytes in storage follow the configured code.
    HsiaoParamCode code(64, 8);
    MemoryController custom(memory, clock, nullptr, code);
    LineData line{};
    setLineWord(line, 0, 0xfeedULL);
    custom.evictLine(128, line);
    EXPECT_EQ(memory.readCheck(128),
              static_cast<std::uint8_t>(code.encode(0xfeedULL)));
    EXPECT_EQ(&custom.code(), &code);
}

TEST_F(ControllerTest, CodecGeometryIsValidatedAtConstruction)
{
    // The machine datapath stores one check byte per ECC group: a codec
    // needing more check bits than the DIMM provides (or a non-64-bit
    // data word) must be rejected up front, not corrupt silently.
    HsiaoParamCode narrow(16);
    EXPECT_THROW(MemoryController(memory, clock, nullptr, narrow),
                 PanicError);
    PhysicalMemory small_checks(4096, 4);
    HsiaoParamCode full(64, 8);
    EXPECT_THROW(MemoryController(small_checks, clock, nullptr, full),
                 PanicError);
}

TEST_F(ControllerTest, MultiBitErrorRaisesInterruptAndFailsFill)
{
    memory.flipDataBit(64, 1);
    memory.flipDataBit(64, 2);

    LineData out{};
    EXPECT_FALSE(controller.fillLine(64, out));
    EXPECT_EQ(interrupts, 1);
    EXPECT_EQ(lastFault.kind, EccFaultKind::MultiBit);
    EXPECT_EQ(lastFault.lineAddr, 64u);
    EXPECT_EQ(lastFault.wordIndex, 0);
}

TEST_F(ControllerTest, CheckOnlyModeReportsWithoutCorrecting)
{
    controller.setMode(EccMode::CheckOnly);
    LineData line{};
    setLineWord(line, 0, 0xffULL);
    controller.setMode(EccMode::CorrectError);
    controller.evictLine(0, line);
    controller.setMode(EccMode::CheckOnly);
    memory.flipDataBit(0, 0);

    LineData out{};
    EXPECT_TRUE(controller.fillLine(0, out));
    EXPECT_EQ(interrupts, 1);
    EXPECT_EQ(lastFault.kind, EccFaultKind::UnreportedSingle);
    EXPECT_EQ(memory.readWord(0), 0xfeULL) << "not corrected";
}

TEST_F(ControllerTest, DisabledModeSkipsChecksAndStalesChecks)
{
    // Writing a word with ECC disabled leaves the stored check byte
    // stale — the foundation of the WatchMemory scramble.
    LineData line{};
    setLineWord(line, 0, 0x1010ULL);
    controller.evictLine(0, line);
    std::uint8_t old_check = memory.readCheck(0);

    controller.setMode(EccMode::Disabled);
    controller.writeWordDeviceOp(0, 0x2020ULL);
    EXPECT_EQ(memory.readCheck(0), old_check);

    // Reads with ECC disabled never check.
    LineData out{};
    EXPECT_TRUE(controller.fillLine(0, out));
    EXPECT_EQ(interrupts, 0);

    // Re-enabled, the stale code trips.
    controller.setMode(EccMode::CorrectError);
    EXPECT_FALSE(controller.fillLine(0, out));
    EXPECT_EQ(interrupts, 1);
}

TEST_F(ControllerTest, DeviceWriteWithEccOnRegeneratesCheck)
{
    controller.writeWordDeviceOp(8, 0x7777ULL);
    EXPECT_EQ(memory.readCheck(8),
              defaultCodec().encode(0x7777ULL));
}

TEST_F(ControllerTest, ScrubCorrectsSinglesAndReportsMulti)
{
    LineData line{};
    setLineWord(line, 0, 0xaaaaULL);
    setLineWord(line, 1, 0xbbbbULL);
    controller.evictLine(0, line);
    memory.flipDataBit(0, 5);       // single: will be healed
    memory.flipDataBit(8, 1);       // double on word 1: reported
    memory.flipDataBit(8, 2);

    controller.scrubRange(0, 1);
    EXPECT_EQ(memory.readWord(0), 0xaaaaULL);
    EXPECT_EQ(interrupts, 1);
    EXPECT_EQ(lastFault.kind, EccFaultKind::ScrubMultiBit);
}

TEST_F(ControllerTest, BusLockBlocksTransfersViaPanic)
{
    controller.lockBus();
    EXPECT_TRUE(controller.busLocked());
    LineData out{};
    EXPECT_THROW(controller.fillLine(0, out), PanicError);
    EXPECT_THROW(controller.evictLine(0, out), PanicError);
    controller.unlockBus();
    EXPECT_TRUE(controller.fillLine(0, out));
}

TEST_F(ControllerTest, BusLockBlocksScrubViaPanic)
{
    // A scrub pass is bus traffic like any other: running one while the
    // bus is locked for a scramble would read half-scrambled lines.
    controller.lockBus();
    EXPECT_THROW(controller.scrubRange(0, 1), PanicError);
    controller.unlockBus();
    controller.scrubRange(0, 1);
}

TEST_F(ControllerTest, DoubleBusLockPanics)
{
    controller.lockBus();
    EXPECT_THROW(controller.lockBus(), PanicError);
    controller.unlockBus();
    EXPECT_THROW(controller.unlockBus(), PanicError);
}

TEST_F(ControllerTest, UnalignedFillPanics)
{
    LineData out{};
    EXPECT_THROW(controller.fillLine(12, out), PanicError);
}

TEST_F(ControllerTest, InterruptWithNoHandlerPanics)
{
    MemoryController bare(memory, clock);
    memory.flipDataBit(0, 1);
    memory.flipDataBit(0, 2);
    LineData out{};
    EXPECT_THROW(bare.fillLine(0, out), PanicError);
}

TEST(PhysicalMemory, RejectsUnalignedCapacity)
{
    EXPECT_THROW(PhysicalMemory(100), FatalError);
    EXPECT_THROW(PhysicalMemory(0), FatalError);
}

TEST(PhysicalMemory, WordRoundTrip)
{
    PhysicalMemory memory(4096);
    memory.writeWord(64, 0x1234ULL);
    EXPECT_EQ(memory.readWord(64), 0x1234ULL);
}

TEST(PhysicalMemory, OutOfRangePanics)
{
    PhysicalMemory memory(4096);
    EXPECT_THROW(memory.readWord(4096), PanicError);
    EXPECT_THROW(memory.readWord(1), PanicError);
    EXPECT_THROW(memory.flipDataBit(0, 64), PanicError);
    EXPECT_THROW(memory.flipCheckBit(0, 8), PanicError);
}

TEST(PhysicalMemory, FreshMemoryDecodesClean)
{
    // All-zero data carries an all-zero check byte by construction.
    PhysicalMemory memory(4096);
    const EccCodec &code = defaultCodec();
    EccDecodeResult result =
        code.decode(memory.readWord(0), memory.readCheck(0));
    EXPECT_EQ(result.status, EccDecodeStatus::Ok);
}

} // namespace
} // namespace safemem
