// Control case: disciplined use of every annotated primitive MUST
// compile under -Wthread-safety -Wthread-safety-beta -Werror. If this
// file fails, the harness (or the annotations themselves) is broken,
// and the violation cases prove nothing.
#include "common/mutex.h"

namespace {

class Disciplined
{
  public:
    void
    bump() EXCLUDES(mutex_)
    {
        safemem::MutexLock lock(mutex_);
        ++value_;
    }

    void
    bothInOrder()
    {
        outer_.lock();
        inner_.lock();
        inner_.unlock();
        outer_.unlock();
    }

    int
    read() EXCLUDES(mutex_)
    {
        safemem::MutexLock lock(mutex_);
        return value_;
    }

  private:
    safemem::Mutex mutex_;
    safemem::Mutex outer_;
    safemem::Mutex inner_ ACQUIRED_AFTER(outer_);
    int value_ GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Disciplined counter;
    counter.bump();
    counter.bothInOrder();
    return counter.read();
}
