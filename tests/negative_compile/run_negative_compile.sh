#!/usr/bin/env bash
# Negative-compile harness for the thread-safety annotations: every
# violation_*.cc must FAIL to compile under Clang's -Wthread-safety
# -Wthread-safety-beta -Werror, and control_clean.cc must compile.
#
# Usage: run_negative_compile.sh [clang++ binary]
#
# Without a Clang compiler (argument or on PATH) the harness cannot
# prove anything — it exits 77, which ctest maps to SKIPPED via
# SKIP_RETURN_CODE, and ci.sh surfaces as a visible warning.
set -u

here="$(cd "$(dirname "$0")" && pwd)"
repo="$(cd "$here/../.." && pwd)"

CXX="${1:-}"
if [ -n "$CXX" ] && ! "$CXX" --version 2>/dev/null | grep -qi clang; then
    CXX="" # a non-Clang compiler can't run the analysis
fi
if [ -z "$CXX" ]; then
    for candidate in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
                     clang++-17 clang++-16 clang++-15 clang++-14; do
        if command -v "$candidate" >/dev/null 2>&1; then
            CXX="$candidate"
            break
        fi
    done
fi
if [ -z "$CXX" ]; then
    echo "negative-compile: WARNING: no clang++ available — the" \
         "annotation-rejection proof is SKIPPED on this host"
    exit 77
fi

FLAGS=(-std=c++20 -fsyntax-only -I "$repo/src"
       -Wthread-safety -Wthread-safety-beta -Werror)
status=0

if "$CXX" "${FLAGS[@]}" "$here/control_clean.cc" 2>/dev/null; then
    echo "negative-compile: control_clean.cc compiles (harness is live)"
else
    echo "negative-compile: FAIL: control_clean.cc does not compile —"
    "$CXX" "${FLAGS[@]}" "$here/control_clean.cc" 2>&1 | head -20
    status=1
fi

for violation in "$here"/violation_*.cc; do
    name="$(basename "$violation")"
    if "$CXX" "${FLAGS[@]}" "$violation" 2>/dev/null; then
        echo "negative-compile: FAIL: $name compiled — the annotations" \
             "no longer reject this violation class"
        status=1
    else
        echo "negative-compile: $name rejected, as it must be"
    fi
done

if [ "$status" -eq 0 ]; then
    echo "negative-compile: all violation classes rejected under $CXX"
fi
exit "$status"
