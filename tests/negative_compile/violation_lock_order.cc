// Negative-compile case: acquiring two mutexes against their declared
// ACQUIRED_AFTER ordering must be rejected by -Wthread-safety-beta
// (-Werror). This is the compile-time face of the bus-lock > bank >
// watch-manager hierarchy (docs/MECHANISM.md §11).
#include "common/mutex.h"

namespace {

class TwoLevel
{
  public:
    void
    wrongOrder()
    {
        inner_.lock();
        outer_.lock(); // BAD: outer must be acquired before inner
        outer_.unlock();
        inner_.unlock();
    }

  private:
    safemem::Mutex outer_;
    safemem::Mutex inner_ ACQUIRED_AFTER(outer_);
};

} // namespace

int
main()
{
    TwoLevel locks;
    locks.wrongOrder();
    return 0;
}
