// Negative-compile case: re-acquiring a capability that is already held
// must be rejected (the compile-time version of the controller's
// "bus already locked" panic and the watch manager's double-park bug).
#include "common/mutex.h"

namespace {

safemem::Mutex g_mutex; // NOLINT: test scaffolding

void
doubleAcquire()
{
    g_mutex.lock();
    g_mutex.lock(); // BAD: already held
    g_mutex.unlock();
    g_mutex.unlock();
}

} // namespace

int
main()
{
    doubleAcquire();
    return 0;
}
