// Negative-compile case: returning with a capability still held (and
// without an ACQUIRE annotation saying so) must be rejected — the
// compile-time version of the bus-lock leak fixed in kernel.cc
// (test_lock_discipline.cc tells that story at runtime).
#include "common/mutex.h"

namespace {

safemem::Mutex g_mutex; // NOLINT: test scaffolding
int g_value GUARDED_BY(g_mutex) = 0;

void
leakLock()
{
    g_mutex.lock();
    ++g_value;
    // BAD: no unlock on this path
}

} // namespace

int
main()
{
    leakLock();
    return 0;
}
