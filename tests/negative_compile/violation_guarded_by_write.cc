// Negative-compile case: writing a GUARDED_BY field without holding its
// mutex must be rejected by -Wthread-safety (-Werror). Compiles cleanly
// on compilers without the analysis — the harness only runs under Clang.
#include "common/mutex.h"

namespace {

class Counter
{
  public:
    void
    bumpUnlocked()
    {
        ++value_; // BAD: mutex_ not held
    }

  private:
    safemem::Mutex mutex_;
    int value_ GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Counter counter;
    counter.bumpUnlocked();
    return 0;
}
