/**
 * @file
 * Tests for the TLB model and its integration with the kernel's
 * translation path and mprotect shootdowns.
 */

#include <gtest/gtest.h>

#include "common/costs.h"
#include "os/machine.h"
#include "os/tlb.h"

namespace safemem {
namespace {

TEST(Tlb, HitAfterInsert)
{
    Tlb tlb(4);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1000));
    EXPECT_EQ(tlb.stats().get("hits"), 1u);
    EXPECT_EQ(tlb.stats().get("misses"), 1u);
}

TEST(Tlb, LruEviction)
{
    Tlb tlb(2);
    tlb.access(0x1000);
    tlb.access(0x2000);
    tlb.access(0x1000);  // 0x2000 becomes LRU
    tlb.access(0x3000);  // evicts 0x2000
    EXPECT_TRUE(tlb.access(0x1000));
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, FlushEmptiesEverything)
{
    Tlb tlb(4);
    tlb.access(0x1000);
    tlb.access(0x2000);
    tlb.flush();
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_FALSE(tlb.access(0x2000));
    EXPECT_EQ(tlb.stats().get("flushes"), 1u);
}

TEST(Tlb, SinglePageInvalidation)
{
    Tlb tlb(4);
    tlb.access(0x1000);
    tlb.access(0x2000);
    tlb.invalidate(0x1000);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x2000));
}

TEST(TlbIntegration, RepeatedAccessesMissOnce)
{
    Machine machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 1024});
    VirtAddr base = machine.kernel().mapRegion(kPageSize);
    for (int i = 0; i < 10; ++i)
        machine.store<std::uint64_t>(base + i * 8, 1);
    EXPECT_EQ(machine.kernel().tlb().stats().get("misses"), 1u);
    EXPECT_EQ(machine.kernel().tlb().stats().get("hits"), 9u);
}

TEST(TlbIntegration, MissChargesAWalk)
{
    Machine machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 1024});
    VirtAddr base = machine.kernel().mapRegion(2 * kPageSize);
    machine.store<std::uint64_t>(base, 1); // miss + cache miss
    Cycles t0 = machine.clock().now();
    machine.store<std::uint64_t>(base + 8, 1); // TLB hit, cache hit
    Cycles hit_cost = machine.clock().now() - t0;
    t0 = machine.clock().now();
    machine.store<std::uint64_t>(base + kPageSize, 1); // TLB miss
    Cycles miss_cost = machine.clock().now() - t0;
    EXPECT_EQ(miss_cost - hit_cost,
              kTlbMissCycles + kDramLineCycles + kCacheMissMgmtCycles -
                  kCacheHitCycles)
        << "page walk plus the line fill, less the cache hit";
}

TEST(TlbIntegration, MprotectShootsTheTlbDown)
{
    Machine machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 1024});
    VirtAddr base = machine.kernel().mapRegion(kPageSize);
    machine.store<std::uint64_t>(base, 1);
    std::uint64_t misses =
        machine.kernel().tlb().stats().get("misses");

    machine.kernel().mprotectRange(base, kPageSize, true);
    machine.store<std::uint64_t>(base, 2);
    EXPECT_EQ(machine.kernel().tlb().stats().get("misses"), misses + 1)
        << "the shootdown forces a fresh walk";
}

} // namespace
} // namespace safemem
