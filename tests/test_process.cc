/**
 * @file
 * Tests for the multi-process kernel: the scheduler's round-robin run
 * queue, per-process ECC fault routing (a fault is the owning process's
 * problem — a neighbour's handler is no help), ASID-tagged TLB isolation
 * across context switches, per-process syscall accounting, and the
 * determinism contract of consolidated runs.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "os/machine.h"
#include "workloads/driver.h"

namespace safemem {
namespace {

TEST(Scheduler, RoundRobinRotatesInAdmissionOrder)
{
    Scheduler sched;
    EXPECT_EQ(sched.pickNext(1), std::nullopt);

    sched.admit(1);
    sched.admit(2);
    sched.admit(3);
    EXPECT_EQ(sched.runnableCount(), 3u);
    EXPECT_EQ(sched.pickNext(1), 2u);
    EXPECT_EQ(sched.pickNext(2), 3u);
    EXPECT_EQ(sched.pickNext(3), 1u); // wraps
}

TEST(Scheduler, ExitedProcessLeavesTheRotation)
{
    Scheduler sched;
    sched.admit(1);
    sched.admit(2);
    sched.admit(3);
    sched.markExited(2);
    EXPECT_EQ(sched.pickNext(1), 3u);
    // A pid no longer runnable (it exited while current) resolves to
    // the head of the queue, not to its old neighbour.
    EXPECT_EQ(sched.pickNext(2), 1u);
    sched.markExited(1);
    // The last process keeps picking itself.
    EXPECT_EQ(sched.pickNext(3), 3u);
    sched.markExited(3);
    EXPECT_EQ(sched.pickNext(3), std::nullopt);
    EXPECT_EQ(sched.stats().get("admitted"), 3u);
    EXPECT_EQ(sched.stats().get("exited"), 3u);
}

TEST(Scheduler, DoubleAdmitAndUnknownExitPanic)
{
    Scheduler sched;
    sched.admit(7);
    EXPECT_THROW(sched.admit(7), PanicError);
    EXPECT_THROW(sched.markExited(8), PanicError);
}

class ProcessTest : public ::testing::Test
{
  protected:
    ProcessTest() : machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 64})
    {
    }

    /** Create a process, make it current, and map one written page. */
    VirtAddr
    bootProcess(Pid &pid, std::uint64_t fill)
    {
        pid = machine.kernel().createProcess();
        machine.kernel().setCurrentProcess(pid);
        VirtAddr base = machine.kernel().mapRegion(kPageSize);
        machine.store<std::uint64_t>(base, fill);
        return base;
    }

    Machine machine;
};

TEST_F(ProcessTest, EccFaultRoutesToOwningProcessHandler)
{
    Kernel &kernel = machine.kernel();
    Pid a = 0, b = 0;
    VirtAddr buf_a = bootProcess(a, 0xAAAA);
    PhysAddr line_a = kernel.translate(buf_a);

    // A registers a handler that repairs the line by undoing the known
    // flips; it records whose context it ran in.
    int faults_seen = 0;
    Pid handler_ran_as = 99;
    VirtAddr faulted_vaddr = 0;
    kernel.registerEccFaultHandler(
        [&](const UserEccFault &fault) {
            ++faults_seen;
            handler_ran_as = kernel.currentPid();
            faulted_vaddr = fault.vaddr;
            machine.physicalMemory().flipDataBit(fault.lineAddr, 2);
            machine.physicalMemory().flipDataBit(fault.lineAddr, 9);
            return FaultDecision::Handled;
        });

    VirtAddr buf_b = bootProcess(b, 0xBBBB);
    ASSERT_EQ(kernel.currentPid(), b);

    // An uncorrectable error strikes A's frame while B is running (the
    // scrubber walks all of DRAM on B's time). The interrupt must be
    // delivered to A — the frame's owner — in A's context, and B must
    // be running again afterwards.
    machine.cache().flushAll();
    machine.physicalMemory().flipDataBit(line_a, 2);
    machine.physicalMemory().flipDataBit(line_a, 9);
    machine.controller().scrubAll();

    EXPECT_EQ(faults_seen, 1);
    EXPECT_EQ(handler_ran_as, a);
    EXPECT_EQ(faulted_vaddr, buf_a);
    EXPECT_EQ(kernel.currentPid(), b);
    EXPECT_EQ(kernel.process(a).stats().get("ecc_interrupts"), 1u);
    EXPECT_EQ(kernel.process(b).stats().get("ecc_interrupts"), 0u);
    EXPECT_EQ(machine.load<std::uint64_t>(buf_b), 0xBBBBULL);
    kernel.setCurrentProcess(a);
    EXPECT_EQ(machine.load<std::uint64_t>(buf_a), 0xAAAAULL)
        << "handler repair visible through A's mapping";
}

TEST_F(ProcessTest, FaultWithoutOwnHandlerPanicsDespiteNeighborHandler)
{
    Kernel &kernel = machine.kernel();
    Pid a = 0, b = 0;
    bootProcess(a, 0xAAAA);
    int faults_seen = 0;
    kernel.registerEccFaultHandler([&](const UserEccFault &) {
        ++faults_seen;
        return FaultDecision::Handled;
    });

    // B never registers a handler. An uncorrectable error in B's own
    // memory is stock-OS behaviour: kernel panic. A's handler is not
    // consulted — the fault is not its memory.
    VirtAddr buf_b = bootProcess(b, 0xBBBB);
    machine.cache().flushAll();
    PhysAddr line_b = kernel.translate(buf_b);
    machine.physicalMemory().flipDataBit(line_b, 2);
    machine.physicalMemory().flipDataBit(line_b, 9);
    EXPECT_THROW(machine.load<std::uint64_t>(buf_b), PanicError);
    EXPECT_EQ(faults_seen, 0);
}

TEST_F(ProcessTest, TlbEntriesNeverLeakAcrossContextSwitch)
{
    // Both address spaces hand out virtual addresses from the same
    // cursor, so A's first page and B's first page share a vaddr but
    // map different frames — the classic stale-TLB trap. The TLB is
    // ASID-tagged instead of flushed, so each process must keep hitting
    // its own translation.
    Kernel &kernel = machine.kernel();
    Pid a = 0, b = 0;
    VirtAddr buf_a = bootProcess(a, 0xAAAA);
    VirtAddr buf_b = bootProcess(b, 0xBBBB);
    ASSERT_EQ(buf_a, buf_b);

    for (int round = 0; round < 4; ++round) {
        kernel.setCurrentProcess(a);
        EXPECT_EQ(machine.load<std::uint64_t>(buf_a), 0xAAAAULL);
        kernel.setCurrentProcess(b);
        EXPECT_EQ(machine.load<std::uint64_t>(buf_b), 0xBBBBULL);
    }

    // A's unmap must not disturb B's same-vaddr translation.
    kernel.setCurrentProcess(a);
    kernel.unmapRegion(buf_a, kPageSize);
    EXPECT_THROW(machine.load<std::uint64_t>(buf_a), PanicError);
    kernel.setCurrentProcess(b);
    EXPECT_EQ(machine.load<std::uint64_t>(buf_b), 0xBBBBULL);
}

TEST_F(ProcessTest, PerProcessStatsSumToMachineWide)
{
    Kernel &kernel = machine.kernel();
    Pid a = 0, b = 0;
    bootProcess(a, 1);
    kernel.mapRegion(2 * kPageSize);
    bootProcess(b, 2);

    EXPECT_EQ(kernel.process(a).stats().get("pages_mapped"), 3u);
    EXPECT_EQ(kernel.process(b).stats().get("pages_mapped"), 1u);
    EXPECT_EQ(kernel.stats().get("pages_mapped"), 4u);
}

TEST_F(ProcessTest, ExitedProcessCannotRunAgain)
{
    Kernel &kernel = machine.kernel();
    Pid a = 0;
    bootProcess(a, 1);
    kernel.setCurrentProcess(0); // back to init before A exits
    kernel.exitProcess(a);
    EXPECT_FALSE(kernel.process(a).alive());
    EXPECT_THROW(kernel.setCurrentProcess(a), PanicError);
    EXPECT_THROW(kernel.exitProcess(a), PanicError);
}

TEST(Consolidated, RunsAreBitIdentical)
{
    RunSpec spec;
    spec.app = "ypserv1";
    spec.tool = ToolKind::SafeMemBoth;
    spec.params.requests = 60;
    spec.params.seed = 42;
    spec.params.buggy = true;
    spec.procs = 2;

    RunResult first = runConsolidated(spec);
    RunResult second = runConsolidated(spec);
    ASSERT_EQ(first.procs.size(), 2u);
    EXPECT_EQ(first.procs[0].pid, 1u);
    EXPECT_EQ(first.procs[1].pid, 2u);
    EXPECT_TRUE(first == second) << "consolidated runs must be pure "
                                    "functions of their RunSpec";

    // The top-level detector counts are the sums of the slices.
    EXPECT_EQ(first.leakReportsTrue, first.procs[0].leakReportsTrue +
                                         first.procs[1].leakReportsTrue);
    EXPECT_EQ(first.corruptionTrue, first.procs[0].corruptionTrue +
                                        first.procs[1].corruptionTrue);
}

TEST(Consolidated, MatrixWorkerCountDoesNotChangeResults)
{
    std::vector<RunSpec> specs;
    for (const char *app : {"gzip", "tar"}) {
        RunSpec spec;
        spec.app = app;
        spec.tool = ToolKind::SafeMemBoth;
        spec.params.requests = 40;
        spec.params.seed = 42;
        spec.params.buggy = true;
        spec.procs = 2;
        specs.push_back(spec);
    }

    std::vector<MatrixCell> serial = runMatrix(specs, 1);
    std::vector<MatrixCell> parallel = runMatrix(specs, 2);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok()) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok()) << parallel[i].error;
        EXPECT_TRUE(serial[i].result == parallel[i].result);
    }
}

TEST(Consolidated, SingleProcSpecUsesTheClassicPath)
{
    RunSpec spec;
    spec.app = "gzip";
    spec.tool = ToolKind::SafeMemBoth;
    spec.params.requests = 40;
    spec.params.seed = 42;
    spec.procs = 1;

    std::vector<MatrixCell> cells = runMatrix({spec}, 1);
    ASSERT_TRUE(cells[0].ok()) << cells[0].error;
    EXPECT_TRUE(cells[0].result.procs.empty())
        << "single-process results must keep their pre-refactor shape";
    RunResult direct =
        runWorkload(spec.app, spec.tool, spec.params);
    EXPECT_TRUE(cells[0].result == direct);
}

} // namespace
} // namespace safemem
