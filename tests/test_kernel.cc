/**
 * @file
 * Tests for the simulated kernel: virtual memory, mprotect/SIGSEGV, the
 * three SafeMem syscalls, page pinning, swapping, and scrub hooks.
 */

#include <gtest/gtest.h>

#include "common/costs.h"
#include "common/logging.h"
#include "ecc/scramble.h"
#include "os/machine.h"

namespace safemem {
namespace {

class KernelTest : public ::testing::Test
{
  protected:
    KernelTest() : machine(MachineConfig{4u << 20, CacheConfig{16, 2}, 64})
    {
    }

    Machine machine;
};

TEST_F(KernelTest, MapRegionProvidesBackedPages)
{
    VirtAddr base = machine.kernel().mapRegion(3 * kPageSize);
    EXPECT_TRUE(machine.kernel().pageMapped(base));
    EXPECT_TRUE(machine.kernel().pageMapped(base + 2 * kPageSize));
    EXPECT_FALSE(machine.kernel().pageMapped(base + 3 * kPageSize));
    machine.store<std::uint64_t>(base + 2 * kPageSize, 42);
    EXPECT_EQ(machine.load<std::uint64_t>(base + 2 * kPageSize), 42u);
}

TEST_F(KernelTest, DistinctRegionsDoNotOverlap)
{
    VirtAddr a = machine.kernel().mapRegion(kPageSize);
    VirtAddr b = machine.kernel().mapRegion(kPageSize);
    EXPECT_GE(b, a + kPageSize);
}

TEST_F(KernelTest, UnmappedAccessPanics)
{
    EXPECT_THROW(machine.load<std::uint64_t>(0x900000000ULL), PanicError);
}

TEST_F(KernelTest, UnmapReleasesPages)
{
    VirtAddr base = machine.kernel().mapRegion(kPageSize);
    machine.store<std::uint64_t>(base, 1);
    machine.kernel().unmapRegion(base, kPageSize);
    EXPECT_FALSE(machine.kernel().pageMapped(base));
    EXPECT_THROW(machine.load<std::uint64_t>(base), PanicError);
}

TEST_F(KernelTest, MprotectBlocksAccessAndSegvHandlerRetries)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    machine.store<std::uint64_t>(base, 7);

    kernel.mprotectRange(base, kPageSize, false);
    int segvs = 0;
    kernel.registerSegvHandler([&](VirtAddr addr) {
        ++segvs;
        kernel.mprotectRange(alignDown(addr, kPageSize), kPageSize, true);
        return true;
    });
    EXPECT_EQ(machine.load<std::uint64_t>(base), 7u);
    EXPECT_EQ(segvs, 1);
    // Unprotected now: no more faults.
    machine.load<std::uint64_t>(base);
    EXPECT_EQ(segvs, 1);
}

TEST_F(KernelTest, UnhandledSegvPanics)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    kernel.mprotectRange(base, kPageSize, false);
    EXPECT_THROW(machine.load<std::uint64_t>(base), PanicError);
}

TEST_F(KernelTest, WatchMemoryScramblesAndPins)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    machine.store<std::uint64_t>(base, 0x1234ULL);

    kernel.watchMemory(base, kCacheLineSize);
    EXPECT_TRUE(kernel.isWatched(base));
    EXPECT_EQ(kernel.watchedLineCount(), 1u);

    PhysAddr frame = kernel.translate(base + kPageSize - 1) -
                     (kPageSize - 1);
    EXPECT_EQ(machine.controller().peekWord(frame),
              defaultScramblePattern().apply(0x1234ULL));
    EXPECT_FALSE(machine.kernel().swapOutPage(base)) << "page pinned";

    kernel.disableWatchMemory(base, kCacheLineSize);
    EXPECT_FALSE(kernel.isWatched(base));
    EXPECT_EQ(machine.controller().peekWord(frame), 0x1234ULL);
    EXPECT_TRUE(machine.kernel().swapOutPage(base)) << "unpinned again";
}

TEST_F(KernelTest, WatchMemoryRequiresLineAlignment)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    EXPECT_THROW(kernel.watchMemory(base + 8, kCacheLineSize), PanicError);
    EXPECT_THROW(kernel.watchMemory(base, 80), PanicError);
}

TEST_F(KernelTest, DoubleWatchPanics)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    kernel.watchMemory(base, kCacheLineSize);
    EXPECT_THROW(kernel.watchMemory(base, kCacheLineSize), PanicError);
}

TEST_F(KernelTest, DisableUnwatchedPanics)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    EXPECT_THROW(kernel.disableWatchMemory(base, kCacheLineSize),
                 PanicError);
}

TEST_F(KernelTest, FirstAccessFaultsAndHandlerDecides)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    machine.store<std::uint64_t>(base, 99);

    int faults = 0;
    kernel.registerEccFaultHandler([&](const UserEccFault &fault) {
        ++faults;
        EXPECT_EQ(alignDown(fault.vaddr, kCacheLineSize), base);
        kernel.disableWatchMemory(base, kCacheLineSize);
        return FaultDecision::Handled;
    });

    kernel.watchMemory(base, kCacheLineSize);
    EXPECT_EQ(machine.load<std::uint64_t>(base), 99u);
    EXPECT_EQ(faults, 1);
}

TEST_F(KernelTest, WriteToWatchedLineAlsoFaults)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    int faults = 0;
    kernel.registerEccFaultHandler([&](const UserEccFault &) {
        ++faults;
        kernel.disableWatchMemory(base, kCacheLineSize);
        return FaultDecision::Handled;
    });
    kernel.watchMemory(base, kCacheLineSize);
    machine.store<std::uint64_t>(base + 8, 5);
    EXPECT_EQ(faults, 1) << "write-allocate RFO fill triggers the fault";
}

TEST_F(KernelTest, EccFaultWithoutHandlerPanics)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    kernel.watchMemory(base, kCacheLineSize);
    EXPECT_THROW(machine.load<std::uint64_t>(base), PanicError);
}

TEST_F(KernelTest, HardwareErrorDecisionPanicsByDefault)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    kernel.registerEccFaultHandler([&](const UserEccFault &) {
        return FaultDecision::HardwareError;
    });
    kernel.watchMemory(base, kCacheLineSize);
    EXPECT_THROW(machine.load<std::uint64_t>(base), PanicError);
}

TEST_F(KernelTest, HardwareErrorDecisionCanBeObserved)
{
    Kernel &kernel = machine.kernel();
    kernel.setPanicOnHardwareError(false);
    VirtAddr base = kernel.mapRegion(kPageSize);
    kernel.registerEccFaultHandler([&](const UserEccFault &) {
        kernel.disableWatchMemory(base, kCacheLineSize);
        return FaultDecision::HardwareError;
    });
    kernel.watchMemory(base, kCacheLineSize);
    machine.load<std::uint64_t>(base);
    EXPECT_EQ(kernel.stats().get("hardware_errors"), 1u);
}

TEST_F(KernelTest, MultiLineWatchCoversWholeRegion)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    kernel.watchMemory(base, 4 * kCacheLineSize);
    EXPECT_EQ(kernel.watchedLineCount(), 4u);
    EXPECT_TRUE(kernel.isWatched(base + 3 * kCacheLineSize));
    EXPECT_FALSE(kernel.isWatched(base + 4 * kCacheLineSize));
    kernel.disableWatchMemory(base, 4 * kCacheLineSize);
    EXPECT_EQ(kernel.watchedLineCount(), 0u);
}

TEST_F(KernelTest, SwapOutThenAccessPagesBackIn)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    machine.store<std::uint64_t>(base + 8, 0xfeedULL);

    ASSERT_TRUE(kernel.swapOutPage(base));
    EXPECT_FALSE(kernel.pageResident(base));
    // Transparent page-in on access, data preserved.
    EXPECT_EQ(machine.load<std::uint64_t>(base + 8), 0xfeedULL);
    EXPECT_TRUE(kernel.pageResident(base));
    EXPECT_EQ(kernel.stats().get("pages_swapped_in"), 1u);
}

TEST_F(KernelTest, SwapCycleLosesUnpinnedWatch)
{
    // The hazard that motivates pinning (paper §2.2.2 "Dealing with
    // Page Swapping"): a watched page that swaps out and back in is
    // rewritten with fresh, matching ECC codes — the watch silently
    // disappears. Reproduce it by dropping the pin behind the kernel's
    // back via a watch bookkeeping trick is impossible here, so verify
    // the two halves: pinning blocks the swap, and a swap cycle of an
    // unwatched page regenerates clean ECC.
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    machine.store<std::uint64_t>(base, 0xabcULL);

    kernel.watchMemory(base, kCacheLineSize);
    EXPECT_FALSE(kernel.swapOutPage(base));
    kernel.disableWatchMemory(base, kCacheLineSize);

    ASSERT_TRUE(kernel.swapOutPage(base));
    EXPECT_EQ(machine.load<std::uint64_t>(base), 0xabcULL);
}

TEST_F(KernelTest, ScrubHooksBracketScrubPasses)
{
    Kernel &kernel = machine.kernel();
    int pre = 0, post = 0;
    kernel.setScrubHooks([&](unsigned) { ++pre; },
                         [&](unsigned) { ++post; });
    kernel.enableScrubbing(10'000);
    machine.compute(20'000);
    kernel.tick();
    EXPECT_EQ(pre, 1);
    EXPECT_EQ(post, 1);
    EXPECT_EQ(machine.controller().mode(), EccMode::CorrectAndScrub);
    kernel.disableScrubbing();
    EXPECT_EQ(machine.controller().mode(), EccMode::CorrectError);
}

TEST_F(KernelTest, ScrubDoesNotFireBeforePeriod)
{
    Kernel &kernel = machine.kernel();
    int pre = 0;
    kernel.setScrubHooks([&](unsigned) { ++pre; }, nullptr);
    kernel.enableScrubbing(1'000'000);
    machine.compute(10);
    kernel.tick();
    EXPECT_EQ(pre, 0);
}

TEST_F(KernelTest, SyscallCostsMatchTable2)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);

    Cycles t0 = machine.clock().now();
    kernel.watchMemory(base, kCacheLineSize);
    Cycles watch = machine.clock().now() - t0;
    t0 = machine.clock().now();
    kernel.disableWatchMemory(base, kCacheLineSize);
    Cycles disable = machine.clock().now() - t0;
    t0 = machine.clock().now();
    kernel.mprotectRange(base, kPageSize, false);
    Cycles mprotect = machine.clock().now() - t0;

    EXPECT_NEAR(cyclesToMicros(watch), 2.0, 0.1);
    EXPECT_NEAR(cyclesToMicros(disable), 1.5, 0.1);
    EXPECT_NEAR(cyclesToMicros(mprotect), 1.02, 0.05);
}

TEST_F(KernelTest, UnmapPinnedPagePanics)
{
    Kernel &kernel = machine.kernel();
    VirtAddr base = kernel.mapRegion(kPageSize);
    kernel.watchMemory(base, kCacheLineSize);
    EXPECT_THROW(kernel.unmapRegion(base, kPageSize), PanicError);
    kernel.disableWatchMemory(base, kCacheLineSize);
    kernel.unmapRegion(base, kPageSize);
}

} // namespace
} // namespace safemem
