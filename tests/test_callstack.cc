/**
 * @file
 * Tests for the shadow stack and the xor/rotate call-stack signature.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/shadow_stack.h"
#include "safemem/callstack.h"

namespace safemem {
namespace {

TEST(ShadowStack, PushPopDepth)
{
    ShadowStack stack;
    EXPECT_EQ(stack.depth(), 0u);
    stack.push(1);
    stack.push(2);
    EXPECT_EQ(stack.depth(), 2u);
    stack.pop();
    EXPECT_EQ(stack.depth(), 1u);
}

TEST(ShadowStack, PopEmptyPanics)
{
    ShadowStack stack;
    EXPECT_THROW(stack.pop(), PanicError);
}

TEST(ShadowStack, TopFramesInnermostFirst)
{
    ShadowStack stack;
    stack.push(10);
    stack.push(20);
    stack.push(30);
    std::uint64_t frames[4];
    EXPECT_EQ(stack.topFrames(frames, 4), 3u);
    EXPECT_EQ(frames[0], 30u);
    EXPECT_EQ(frames[1], 20u);
    EXPECT_EQ(frames[2], 10u);
}

TEST(ShadowStack, FrameGuardBalances)
{
    ShadowStack stack;
    {
        FrameGuard outer(stack, 1);
        EXPECT_EQ(stack.depth(), 1u);
        {
            FrameGuard inner(stack, 2);
            EXPECT_EQ(stack.depth(), 2u);
        }
        EXPECT_EQ(stack.depth(), 1u);
    }
    EXPECT_EQ(stack.depth(), 0u);
}

TEST(CallStackSignature, UsesFourInnermostFrames)
{
    ShadowStack a;
    for (std::uint64_t f : {1, 2, 3, 4, 5})
        a.push(f);
    ShadowStack b;
    for (std::uint64_t f : {9, 2, 3, 4, 5})
        b.push(f);
    // Frames beyond the innermost four do not matter.
    EXPECT_EQ(callStackSignature(a), callStackSignature(b));
}

TEST(CallStackSignature, OrderSensitive)
{
    std::uint64_t ab[] = {0x100, 0x200};
    std::uint64_t ba[] = {0x200, 0x100};
    EXPECT_NE(callStackSignature(ab, 2), callStackSignature(ba, 2));
}

TEST(CallStackSignature, DifferentCallersDiffer)
{
    std::uint64_t a[] = {0x400000, 0x400040};
    std::uint64_t b[] = {0x400000, 0x400080};
    EXPECT_NE(callStackSignature(a, 2), callStackSignature(b, 2));
}

TEST(CallStackSignature, EmptyStackIsZero)
{
    ShadowStack stack;
    EXPECT_EQ(callStackSignature(stack), 0u);
}

TEST(CallStackSignature, MatchesXorRotateDefinition)
{
    // sig = rotl(rotl(0,7) ^ f0, 7) ^ f1 with innermost first.
    auto rotl = [](std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    };
    std::uint64_t frames[] = {0xaaaa, 0xbbbb};
    std::uint64_t expected = rotl(0xaaaa, 7) ^ 0xbbbbULL;
    EXPECT_EQ(callStackSignature(frames, 2), expected);
}

} // namespace
} // namespace safemem
