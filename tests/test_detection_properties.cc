/**
 * @file
 * Parameterized property sweeps over the corruption detector: overflow
 * distance x buffer size (which offsets are detectable is fully
 * determined by line-granularity geometry), and UAF across every size
 * class boundary.
 */

#include <gtest/gtest.h>

#include "alloc/heap_allocator.h"
#include "common/logging.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

namespace safemem {
namespace {

/** (buffer size, overflow offset past the requested end). */
using OverflowCase = std::pair<std::size_t, std::size_t>;

class OverflowGeometry : public ::testing::TestWithParam<OverflowCase>
{
};

TEST_P(OverflowGeometry, DetectedIffPastTheRoundedBody)
{
    auto [size, offset] = GetParam();
    Machine machine(MachineConfig{16u << 20, CacheConfig{32, 4}, 64});
    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();
    SafeMemConfig config;
    config.detectLeaks = false;
    SafeMemTool tool(machine, allocator, backend, config);
    ShadowStack stack;

    VirtAddr buffer = tool.toolAlloc(size, stack, 1);
    machine.store<std::uint8_t>(buffer + size + offset, 0xee);

    // Detectable exactly when the write lands beyond alignUp(size, 64)
    // but within the single guard line — the geometry the paper's §2.2.3
    // discussion implies.
    std::size_t body = alignUp(size, kCacheLineSize);
    bool should_detect = size + offset >= body &&
                         size + offset < body + kCacheLineSize;
    EXPECT_EQ(!tool.corruptionDetector().reports().empty(),
              should_detect)
        << "size=" << size << " offset=" << offset;
    tool.toolFree(buffer);
    tool.finish();
}

std::vector<OverflowCase>
overflowCases()
{
    std::vector<OverflowCase> cases;
    for (std::size_t size : {1u, 63u, 64u, 100u, 128u, 1000u, 4096u}) {
        for (std::size_t offset : {0u, 1u, 8u, 27u, 63u, 64u, 120u})
            cases.emplace_back(size, offset);
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Geometry, OverflowGeometry,
                         ::testing::ValuesIn(overflowCases()));

/** UAF must be caught for every size class, slab-backed or not. */
class UafSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(UafSizes, DanglingReadCaught)
{
    std::size_t size = GetParam();
    Machine machine(MachineConfig{64u << 20, CacheConfig{32, 4}, 64});
    HeapAllocator allocator(machine);
    EccWatchManager backend(machine);
    backend.installFaultHandler();
    SafeMemConfig config;
    config.detectLeaks = false;
    SafeMemTool tool(machine, allocator, backend, config);
    ShadowStack stack;

    VirtAddr buffer = tool.toolAlloc(size, stack, 1);
    machine.store<std::uint8_t>(buffer, 1);
    tool.toolFree(buffer);

    machine.load<std::uint8_t>(buffer + size / 2);
    ASSERT_EQ(tool.corruptionDetector().reports().size(), 1u)
        << "size " << size;
    EXPECT_EQ(tool.corruptionDetector().reports()[0].kind,
              CorruptionKind::UseAfterFree);
    tool.finish();
}

INSTANTIATE_TEST_SUITE_P(Sizes, UafSizes,
                         ::testing::Values(1, 16, 64, 100, 256, 1024,
                                           4096, 16'000, 40'000,
                                           120'000));

} // namespace
} // namespace safemem
