/**
 * @file
 * Tests for the SafeMemTool facade: wrapper routing, configuration
 * combinations, cost attribution, and the calloc/realloc paths.
 */

#include <gtest/gtest.h>

#include "alloc/heap_allocator.h"
#include "common/logging.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

namespace safemem {
namespace {

class SafeMemToolTest : public ::testing::Test
{
  protected:
    SafeMemToolTest()
        : machine(MachineConfig{32u << 20, CacheConfig{32, 4}, 64}),
          allocator(machine), backend(machine)
    {
        backend.installFaultHandler();
        backend.installScrubHooks();
    }

    std::unique_ptr<SafeMemTool>
    makeTool(bool ml, bool mc)
    {
        SafeMemConfig config;
        config.detectLeaks = ml;
        config.detectCorruption = mc;
        return std::make_unique<SafeMemTool>(machine, allocator, backend,
                                             config);
    }

    Machine machine;
    HeapAllocator allocator;
    EccWatchManager backend;
    ShadowStack stack;
};

TEST_F(SafeMemToolTest, MlOnlyAlignsToGranuleWithoutGuards)
{
    auto tool = makeTool(true, false);
    VirtAddr addr = tool->toolAlloc(100, stack, 0);
    EXPECT_TRUE(isAligned(addr, kCacheLineSize));
    EXPECT_EQ(backend.regionCount(), 0u) << "no guards in ML-only mode";
    tool->toolFree(addr);
    tool->finish();
}

TEST_F(SafeMemToolTest, McOnlyPlacesGuards)
{
    auto tool = makeTool(false, true);
    VirtAddr addr = tool->toolAlloc(100, stack, 0);
    EXPECT_EQ(backend.regionCount(), 2u);
    tool->toolFree(addr);
    EXPECT_EQ(backend.regionCount(), 1u) << "freed-body watch remains";
    tool->finish();
    EXPECT_EQ(backend.regionCount(), 0u);
}

TEST_F(SafeMemToolTest, DisabledDetectorAccessorsPanic)
{
    auto ml = makeTool(true, false);
    EXPECT_THROW(ml->corruptionDetector(), PanicError);
    auto mc = makeTool(false, true);
    EXPECT_THROW(mc->leakDetector(), PanicError);
}

TEST_F(SafeMemToolTest, CallocZeroesThroughGuards)
{
    auto tool = makeTool(true, true);
    VirtAddr addr = tool->toolCalloc(16, 8, stack, 0);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(machine.load<std::uint64_t>(addr + i * 8), 0u);
    EXPECT_TRUE(tool->corruptionDetector().reports().empty());
    tool->toolFree(addr);
    tool->finish();
}

TEST_F(SafeMemToolTest, ReallocKeepsBothDetectorsConsistent)
{
    auto tool = makeTool(true, true);
    VirtAddr addr = tool->toolAlloc(64, stack, 0);
    machine.store<std::uint64_t>(addr, 0xfaceULL);

    VirtAddr grown = tool->toolRealloc(addr, 4096, stack, 0);
    EXPECT_EQ(machine.load<std::uint64_t>(grown), 0xfaceULL);
    // The old body is watched as freed; guards protect the new block.
    machine.store<std::uint64_t>(grown + 4096, 1);
    ASSERT_EQ(tool->corruptionDetector().reports().size(), 1u);
    EXPECT_EQ(tool->corruptionDetector().reports()[0].kind,
              CorruptionKind::OverflowPadding);
    tool->toolFree(grown);
    tool->finish();
}

TEST_F(SafeMemToolTest, ReallocFromNullIsAlloc)
{
    auto tool = makeTool(true, true);
    VirtAddr addr = tool->toolRealloc(0, 128, stack, 0);
    EXPECT_TRUE(tool->corruptionDetector().owns(addr));
    tool->toolFree(addr);
    tool->finish();
}

TEST_F(SafeMemToolTest, OverheadLandsInToolBuckets)
{
    auto tool = makeTool(true, true);
    Cycles app0 = machine.clock().charged(CostCenter::Application);
    VirtAddr addr = tool->toolAlloc(64, stack, 0);
    tool->toolFree(addr);
    tool->finish();
    EXPECT_GT(machine.clock().charged(CostCenter::ToolCorruption), 0u);
    EXPECT_GT(machine.clock().charged(CostCenter::ToolLeak), 0u);
    EXPECT_EQ(machine.clock().charged(CostCenter::Application), app0)
        << "no tool work billed to the application";
}

TEST_F(SafeMemToolTest, LeakSuspectOverAGuardedBufferStillPrunes)
{
    // ML + MC together: a long-lived guarded buffer becomes a leak
    // suspect; its body watch must coexist with the guards and the
    // pruning access must restore normal operation.
    SafeMemConfig config;
    config.detectLeaks = true;
    config.detectCorruption = true;
    config.warmupTime = 1000;
    config.checkingPeriod = 500;
    config.minStableTime = 2000;
    config.leakReportThreshold = 1'000'000;
    config.suspectCooldown = 5000;
    SafeMemTool tool(machine, allocator, backend, config);

    // Establish a short stable lifetime for the group.
    for (int i = 0; i < 8; ++i) {
        VirtAddr addr = tool.toolAlloc(128, stack, 0);
        machine.store<std::uint64_t>(addr, 1);
        machine.compute(3'000);
        tool.toolFree(addr);
    }
    // A straggler that outlives the maximum by far.
    VirtAddr straggler = tool.toolAlloc(128, stack, 0);
    machine.store<std::uint64_t>(straggler, 2);
    for (int i = 0; i < 12; ++i) {
        VirtAddr addr = tool.toolAlloc(128, stack, 0);
        machine.compute(3'000);
        tool.toolFree(addr);
    }
    EXPECT_GT(tool.leakDetector().stats().get("suspects_watched"), 0u);

    // Touching the straggler prunes the suspicion; the buffer stays
    // fully usable and guarded.
    EXPECT_EQ(machine.load<std::uint64_t>(straggler), 2u);
    EXPECT_EQ(tool.leakDetector().prunedSuspects(), 1u);
    machine.store<std::uint64_t>(straggler + 128, 9); // overflow
    EXPECT_EQ(tool.corruptionDetector().reports().size(), 1u);
    tool.toolFree(straggler);
    tool.finish();
}

} // namespace
} // namespace safemem
