/**
 * @file
 * Equivalence lock for the enum-indexed StatSet rework: across real
 * machine traffic and a full workload run, the slot-registered counters
 * must snapshot to exactly the name->value map the old string-keyed
 * implementation produced — same names, same values, enum and string
 * views always agreeing.
 */

#include <gtest/gtest.h>

#include "alloc/heap_allocator.h"
#include "cache/cache.h"
#include "common/logging.h"
#include "mem/memory_controller.h"
#include "os/kernel.h"
#include "os/machine.h"
#include "os/tlb.h"
#include "workloads/driver.h"

namespace safemem {
namespace {

/**
 * Assert that @p stats is internally consistent the way the old
 * implementation was by construction: every snapshot entry is readable
 * back through the string get(), every registered slot agrees between
 * its index and its name, and untouched slots read 0 and stay out of
 * the snapshot.
 */
template <typename E>
void
expectEnumStringAgreement(const StatSet &stats)
{
    auto snapshot = stats.all();
    for (const auto &[name, value] : snapshot)
        EXPECT_EQ(stats.get(name), value) << name;

    const auto &names = stats.slotNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(stats.get(static_cast<E>(i)), stats.get(names[i]))
            << names[i];
        if (!snapshot.count(names[i])) {
            EXPECT_EQ(stats.get(names[i]), 0u) << names[i];
        }
    }
}

TEST(StatsEquivalence, MachineTrafficSnapshotsMatchStringView)
{
    setLogQuiet(true);
    Machine machine;
    VirtAddr region = machine.kernel().mapRegion(64 * kPageSize);

    // Mixed traffic: hits, misses, writebacks, TLB churn, block spans.
    for (std::uint64_t i = 0; i < 20000; ++i) {
        VirtAddr addr = region + (i * 264) % (64 * kPageSize - 8);
        if (i % 3 == 0)
            machine.store<std::uint64_t>(addr, i);
        else
            machine.load<std::uint64_t>(addr);
    }
    std::vector<std::uint8_t> buffer(kPageSize);
    machine.write(region, buffer.data(), buffer.size());
    machine.read(region + kPageSize, buffer.data(), buffer.size());

    expectEnumStringAgreement<CacheStat>(machine.cache().stats());
    expectEnumStringAgreement<TlbStat>(machine.kernel().tlb().stats());
    expectEnumStringAgreement<KernelStat>(machine.kernel().stats());
    expectEnumStringAgreement<ControllerStat>(
        machine.controller().stats());

    // The traffic above must actually have exercised the hot counters.
    EXPECT_GT(machine.cache().stats().get(CacheStat::Hits), 0u);
    EXPECT_GT(machine.cache().stats().get(CacheStat::Misses), 0u);
    EXPECT_GT(machine.kernel().tlb().stats().get(TlbStat::Hits), 0u);
}

TEST(StatsEquivalence, WorkloadRunKeepsHistoricalStatNames)
{
    setLogQuiet(true);
    RunParams params;
    params.requests = defaultRequests("ypserv1");
    params.buggy = true;
    params.seed = 42;
    RunResult result =
        runWorkload("ypserv1", ToolKind::SafeMemBoth, params);

    // The driver merges each module's all() snapshot under a dotted
    // prefix; these exact keys predate the enum rework and must survive
    // it (report_writer and the table tooling key on them).
    for (const char *key :
         {"cache.hits", "cache.misses", "cache.writebacks", "tlb.hits",
          "tlb.misses", "kernel.pages_mapped", "kernel.lines_watched",
          "controller.line_fills", "controller.line_evictions",
          "alloc.allocs", "alloc.frees", "leak.allocs_tracked",
          "watch.regions_watched"}) {
        ASSERT_TRUE(result.stats.count(key)) << key;
        EXPECT_GT(result.stats.at(key), 0u) << key;
    }

    // Slot names never leak enum spellings into snapshots.
    for (const auto &[name, value] : result.stats)
        EXPECT_EQ(name.find("Stat::"), std::string::npos) << name;
}

} // namespace
} // namespace safemem
