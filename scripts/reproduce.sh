#!/usr/bin/env bash
# Rebuild everything from scratch, run the full test suite, and
# regenerate every table and figure of the paper into bench_output.txt.
#
#   scripts/reproduce.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "== tests =="
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

echo "== tables and figures =="
: > bench_output.txt
for b in "$BUILD"/bench/*; do
    "$b" 2>&1 | tee -a bench_output.txt
done

echo
echo "done: see test_output.txt, bench_output.txt and EXPERIMENTS.md"
