#!/usr/bin/env bash
# Full correctness gauntlet:
#
#   1. tier-1 verify      — default build + ctest (includes the lint tests)
#   2. ASan configuration — full ctest under AddressSanitizer
#   3. UBSan configuration— full ctest under UndefinedBehaviorSanitizer
#   4. repo lint          — tools/lint/lint.py over the tree + self-test
#   5. format check       — scripts/check_format.sh (skips w/o clang-format)
#
# Every stage runs even when an earlier one fails; the exit status is
# non-zero if any stage failed.
set -u

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
failures=()

stage() {
    local name=$1
    shift
    echo
    echo "=== ci: $name ==="
    if "$@"; then
        echo "=== ci: $name OK ==="
    else
        echo "=== ci: $name FAILED ==="
        failures+=("$name")
    fi
}

build_and_test() {
    local dir=$1
    shift
    cmake -B "$dir" -S . "$@" &&
        cmake --build "$dir" -j "$JOBS" &&
        ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

stage "tier-1 (default build + ctest)" build_and_test build
stage "asan ctest" build_and_test build-asan -DSAFEMEM_ASAN=ON
stage "ubsan ctest" build_and_test build-ubsan -DSAFEMEM_UBSAN=ON
stage "repo lint" python3 tools/lint/lint.py --root .
stage "lint self-test" python3 tools/lint/lint.py --self-test
stage "format check" scripts/check_format.sh

echo
if [ "${#failures[@]}" -ne 0 ]; then
    echo "ci: FAILED stages: ${failures[*]}"
    exit 1
fi
echo "ci: all stages passed"
