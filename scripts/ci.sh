#!/usr/bin/env bash
# Full correctness gauntlet:
#
#   1. tier-1 verify      — default build + ctest (includes the lint tests)
#   2. ASan configuration — full ctest under AddressSanitizer
#   3. UBSan configuration— full ctest under UndefinedBehaviorSanitizer
#   4. TSan configuration — full ctest under ThreadSanitizer; the matrix
#                           tests drive concurrent machines, so this is
#                           the data-race gate for the parallel harness
#   5. bench smoke        — bench_hotpath --json and bench_matrix --json;
#                           fail on malformed JSON or missing keys
#   5b. campaign smoke    — bench_ecc_campaign over the codec zoo: JSON
#                           shape, scramble verdicts, and worker-count
#                           independence (byte-identical files)
#   6. trace smoke        — a traced safemem_run workload decoded with
#                           trace_dump (records + --summary); fail on
#                           malformed JSON-lines
#   7. multiproc smoke    — the full app sweep at --procs 2 must produce
#                           byte-identical reports for any worker count
#   7b. bank smoke        — the full app sweep at --banks 4 must be
#                           byte-identical for any worker count, and
#                           bench_banked --json must report bit-identical
#                           serial-vs-matrix cells across the bank sweep
#   7c. fleet smoke       — a reduced bench_fleet sampled-monitoring
#                           sweep: byte-identical JSON for any worker
#                           count, pinned cell shape, overhead ordering
#   7d. tradeoff smoke    — bench_ecc_tradeoff: byte-identical JSON for
#                           any worker count, redundancy overhead falling
#                           with codeword size, decode/RMW accounting,
#                           and --geometry word bit-identical to the
#                           pre-geometry golden sweep
#   8. notrace build      — library/tools compile with -DSAFEMEM_TRACE=OFF
#   9. static analysis    — -Wthread-safety build (clang++), clang-tidy
#                           gauntlet, negative-compile proof, repo lint;
#                           the Clang-only pieces SKIP with a visible
#                           warning on GCC-only hosts
#  10. repo lint          — tools/lint/lint.py over the tree + self-test
#  11. format check       — scripts/check_format.sh (skips w/o clang-format)
#
# Every stage runs even when an earlier one fails; the exit status is
# non-zero if any stage failed.
set -u

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
failures=()

stage() {
    local name=$1
    shift
    echo
    echo "=== ci: $name ==="
    if "$@"; then
        echo "=== ci: $name OK ==="
    else
        echo "=== ci: $name FAILED ==="
        failures+=("$name")
    fi
}

build_and_test() {
    local dir=$1
    shift
    cmake -B "$dir" -S . "$@" &&
        cmake --build "$dir" -j "$JOBS" &&
        ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

bench_smoke() {
    # A fast run is enough to validate the report shape; the committed
    # BENCH_hotpath.json baseline is produced from a full run instead.
    local out=build/bench/BENCH_hotpath_smoke.json
    build/bench/bench_hotpath --json --out "$out" --accesses 200000 \
        >/dev/null &&
        python3 - "$out" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

for key in ("bench", "word_accesses", "phases", "total_accesses",
            "total_wall_seconds", "simulated_cycles_total"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["bench"] == "hotpath"
assert doc["phases"], "no phases recorded"
for phase in doc["phases"]:
    for key in ("name", "accesses", "bytes", "wall_seconds",
                "ms_per_million_accesses", "hits", "misses", "hit_rate",
                "simulated_cycles"):
        assert key in phase, f"missing phase key: {key}"
print(f"bench smoke: {len(doc['phases'])} phases, "
      f"{doc['simulated_cycles_total']} simulated cycles")
PYEOF
}

matrix_smoke() {
    # Reduced requests keep this fast; the committed BENCH_matrix.json
    # baseline is produced from a full paper-scale run instead.
    local out=build/bench/BENCH_matrix_smoke.json
    build/bench/bench_matrix --json --requests 100 --workers 2 \
        >"$out" &&
        python3 - "$out" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

for key in ("bench", "cells", "requests", "workers", "hardware_threads",
            "serial_seconds", "parallel_seconds", "speedup", "identical"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["bench"] == "matrix"
assert doc["cells"] == 42, f"expected the 42-cell Table 3 sweep: {doc}"
assert doc["identical"] is True, "parallel sweep diverged from serial"
print(f"matrix smoke: {doc['cells']} cells, "
      f"speedup {doc['speedup']}x on {doc['workers']} workers")
PYEOF
}

campaign_smoke() {
    # A reduced fault-injection campaign over the full codec zoo: the
    # JSON document must carry the expected shape and verdicts (the
    # Hsiao codes host a scramble signature, pure-SEC Hamming must
    # not), and the sweep must be byte-identical for any worker count.
    local one=build/bench/BENCH_campaign_smoke_w1.json
    local four=build/bench/BENCH_campaign_smoke_w4.json
    build/bench/bench_ecc_campaign --samples 400 --seed 11 --workers 1 \
        --out "$one" >/dev/null &&
        build/bench/bench_ecc_campaign --samples 400 --seed 11 \
            --workers 4 --out "$four" >/dev/null &&
        if ! cmp -s "$one" "$four"; then
            echo "campaign smoke: worker count changed the results:"
            diff "$one" "$four" | head -20
            return 1
        fi &&
        python3 - "$one" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

for key in ("bench", "seed", "samples", "max_errors", "codecs"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["bench"] == "ecc_campaign"
assert len(doc["codecs"]) == 3, f"expected the 3-codec zoo: {doc}"

by_spec = {codec["spec"]: codec for codec in doc["codecs"]}
assert set(by_spec) == {"hsiao", "hamming64/8", "hsiao:64/8"}, \
    sorted(by_spec)
for spec, codec in by_spec.items():
    for key in ("name", "data_bits", "check_bits", "scramble_viable",
                "scramble_bits", "cells", "cdf"):
        assert key in codec, f"{spec}: missing key {key}"
    assert len(codec["cells"]) == 1 + 2 * doc["max_errors"], codec
    for cell in codec["cells"]:
        assert cell["corrected"] + cell["detected"] + \
            cell["miscorrected"] == cell["trials"], cell
    for outcome in ("corrected", "detected", "miscorrected"):
        cdf = codec["cdf"][outcome]
        assert cdf == sorted(cdf), f"{spec}: {outcome} CDF not sorted"

assert by_spec["hsiao"]["scramble_viable"] is True
assert by_spec["hsiao:64/8"]["scramble_viable"] is True
assert by_spec["hamming64/8"]["scramble_viable"] is False, \
    "pure-SEC Hamming must not host a scramble signature"
doubles = next(c for c in by_spec["hamming64/8"]["cells"]
               if c["mode"] == "random" and c["errors"] == 2)
assert doubles["miscorrected"] > 0 and doubles["detected"] == 0, doubles
print(f"campaign smoke: 3 codecs x {len(by_spec['hsiao']['cells'])} "
      f"cells, verdicts and CDFs well-formed")
PYEOF
}

trace_smoke() {
    # Record a real (small) workload, then validate the analyzer's
    # JSON-lines shape end to end: every line an object with the full
    # key set, event names from the published table, cycles monotone
    # per run section.
    local bin=build/trace_smoke.bin
    local out=build/trace_smoke.jsonl
    local summary=build/trace_smoke_summary.jsonl
    build/tools/safemem_run gzip --requests 20 --trace "$bin" \
        >/dev/null &&
        build/tools/trace_dump "$bin" >"$out" &&
        build/tools/trace_dump --summary "$bin" >"$summary" &&
        python3 - "$summary" <<'PYEOF' &&
import json
import sys

lines = open(sys.argv[1]).read().splitlines()
assert lines, "trace_dump --summary produced no sections"
for line in lines:
    doc = json.loads(line)
    assert set(doc) == {"run", "emitted", "retained", "cycle_first",
                        "cycle_last", "events", "bank_events"}, \
        f"bad key set: {sorted(doc)}"
    assert doc["retained"] == sum(doc["events"].values()), doc
    assert doc["cycle_first"] <= doc["cycle_last"], doc
    # Per-bank counts cover only bank-carrying events, so they are
    # bounded by (not equal to) the retained total.
    assert sum(doc["bank_events"].values()) <= doc["retained"], doc
print(f"trace summary: {len(lines)} section(s)")
PYEOF
        python3 - "$out" <<'PYEOF'
import json
import sys

lines = open(sys.argv[1]).read().splitlines()
assert lines, "trace_dump produced no records"

last_cycle = {}
last_seq = {}
bank_records = 0
for line in lines:
    rec = json.loads(line)
    base = {"run", "seq", "cycle", "pid", "event", "a", "b", "c"}
    # Bank-carrying events get the decoded "bank" key appended.
    assert set(rec) in (base, base | {"bank"}), \
        f"bad key set: {sorted(rec)}"
    if "bank" in rec:
        bank_records += 1
        assert rec["bank"] in (rec["a"], rec["b"], rec["c"]), rec
    assert isinstance(rec["event"], str) and rec["event"] != "?", rec
    run = rec["run"]
    assert rec["cycle"] >= last_cycle.get(run, 0), f"cycle ran backwards: {rec}"
    assert rec["seq"] > last_seq.get(run, -1), f"seq not increasing: {rec}"
    last_cycle[run] = rec["cycle"]
    last_seq[run] = rec["seq"]
assert "gzip/safemem" in last_seq, f"runs seen: {sorted(last_seq)}"
assert bank_records > 0, "no bank-carrying records decoded"
print(f"trace smoke: {len(lines)} records across {len(last_seq)} run(s), "
      f"{bank_records} bank-carrying")
PYEOF
}

bank_smoke() {
    # The banked memory system's run-identity contract: the whole-app
    # sweep at --banks 4 (with consolidated processes sharing the
    # banked controller) must produce byte-identical reports for any
    # worker count, and the reduced bench_banked sweep must report
    # every (banks x procs) cell bit-identical between the serial and
    # matrix drivers.
    local serial=build/bank_serial.txt
    local parallel=build/bank_parallel.txt
    local bench=build/bench/BENCH_banked_smoke.json
    build/tools/safemem_run all --banks 4 --procs 2 --buggy \
        --requests 60 --stats --simcheck --workers 1 >"$serial" &&
        build/tools/safemem_run all --banks 4 --procs 2 --buggy \
            --requests 60 --stats --simcheck --workers 4 >"$parallel" &&
        grep -q "sched.bank_disjoint_handoffs" "$serial" &&
        if cmp -s "$serial" "$parallel"; then
            echo "bank smoke: serial and 4-worker --banks 4 sweeps identical"
        else
            echo "bank smoke: worker count changed the results:"
            diff "$serial" "$parallel" | head -20
            return 1
        fi &&
        build/bench/bench_banked --json --requests 250 >"$bench" &&
        python3 - "$bench" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

for key in ("bench", "app", "requests", "cells", "identical"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["bench"] == "banked"
assert len(doc["cells"]) == 12, f"expected the 4x3 bank sweep: {doc}"
for cell in doc["cells"]:
    for key in ("banks", "procs", "seconds", "total_cycles",
                "disjoint_handoffs", "gated_handoffs", "bug_detected",
                "identical"):
        assert key in cell, f"missing cell key: {key}"
    assert cell["identical"] is True, f"cell diverged: {cell}"
    assert cell["bug_detected"] is True, f"bug missed: {cell}"
    if cell["banks"] == 1:
        assert cell["disjoint_handoffs"] == 0, \
            f"banks=1 must not classify hand-offs: {cell}"
assert doc["identical"] is True, "a banked cell diverged"
print(f"bank smoke: {len(doc['cells'])} cells bit-identical")
PYEOF
}

multiproc_smoke() {
    # Consolidated runs must be pure functions of their RunSpec: the
    # whole-matrix sweep at --procs 2 has to produce byte-identical
    # reports (per-process detector slices, contention counters, every
    # stat) no matter how many matrix workers drive it.
    local serial=build/multiproc_serial.txt
    local parallel=build/multiproc_parallel.txt
    build/tools/safemem_run all --tool safemem --buggy --procs 2 \
        --requests 60 --stats --simcheck --workers 1 >"$serial" &&
        build/tools/safemem_run all --tool safemem --buggy --procs 2 \
            --requests 60 --stats --simcheck --workers 4 >"$parallel" &&
        grep -q "x2 consolidated processes" "$serial" &&
        grep -q "\[pid 1\]" "$serial" &&
        grep -q "cross-process evictions" "$serial" &&
        if cmp -s "$serial" "$parallel"; then
            echo "multiproc smoke: serial and 4-worker sweeps identical"
        else
            echo "multiproc smoke: worker count changed the results:"
            diff "$serial" "$parallel" | head -20
            false
        fi
}

fleet_smoke() {
    # The sampled-monitoring fleet scenario: a reduced bench_fleet run
    # must produce byte-identical JSON for any worker count (the JSON
    # deliberately carries no wall-clock fields), report the expected
    # cell set and shape, and survive its own in-process worker-count
    # identity check (non-zero exit otherwise).
    local one=build/bench/BENCH_fleet_smoke_w1.json
    local four=build/bench/BENCH_fleet_smoke_w4.json
    build/bench/bench_fleet --json --procs 4 --seeds 2 --requests 120 \
        --workers 1 >"$one" &&
        build/bench/bench_fleet --json --procs 4 --seeds 2 \
            --requests 120 --workers 4 >"$four" &&
        if cmp -s "$one" "$four"; then
            echo "fleet smoke: 1-worker and 4-worker JSON identical"
        else
            echo "fleet smoke: worker count changed the results:"
            diff "$one" "$four" | head -20
            return 1
        fi &&
        python3 - "$one" <<'PYEOF'
import json
import math
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

for key in ("bench", "app", "procs", "requests", "seeds", "base_seed",
            "banks", "identical", "cells"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["bench"] == "fleet"
assert doc["identical"] is True, "worker pools diverged inside the bench"

tools = [cell["tool"] for cell in doc["cells"]]
assert tools[:3] == ["none", "safemem", "purify"], tools
sampled = [cell for cell in doc["cells"]
           if cell["kind"] == "safemem-sampled"]
assert sampled, f"no sampled cells in the sweep: {tools}"
for cell in doc["cells"]:
    for key in ("tool", "kind", "rate", "seeds_run", "seeds_detected",
                "detection_percent", "mean_overhead_percent",
                "mean_catch_seconds", "mean_total_cycles",
                "monitored_allocs", "total_allocs", "monitored_percent",
                "zero_sample_tenants"):
        assert key in cell, f"{cell.get('tool')}: missing key {key}"
        value = cell[key]
        if isinstance(value, float):
            assert math.isfinite(value), f"{cell['tool']}.{key}: {value}"
    assert cell["seeds_detected"] <= cell["seeds_run"], cell
for cell in sampled:
    assert 0 < cell["rate"] < 1, cell
    assert cell["monitored_allocs"] <= cell["total_allocs"], cell
full = next(c for c in doc["cells"] if c["tool"] == "safemem")
for cell in sampled:
    assert cell["mean_overhead_percent"] < full["mean_overhead_percent"], \
        f"sampling did not shed overhead: {cell}"
print(f"fleet smoke: {len(doc['cells'])} cells "
      f"({len(sampled)} sampled rates), shape and guards OK")
PYEOF
}

tradeoff_smoke() {
    # The protection-geometry lab: a reduced bench_ecc_tradeoff sweep
    # must be byte-identical for any worker count (the JSON carries no
    # wall-clock fields), show the bandwidth/latency trade — EDC+ECC
    # redundancy overhead falling as codewords grow at a zero error
    # rate, decode and RMW costs separately accounted — and the word
    # default must keep the whole-app sweep byte-identical to the
    # pre-geometry golden capture.
    local one=build/bench/BENCH_tradeoff_smoke_w1.json
    local four=build/bench/BENCH_tradeoff_smoke_w4.json
    local golden=build/tradeoff_golden_word.txt
    build/bench/bench_ecc_tradeoff --json --batches 6 --workers 1 \
        >"$one" &&
        build/bench/bench_ecc_tradeoff --json --batches 6 --workers 4 \
            >"$four" &&
        if ! cmp -s "$one" "$four"; then
            echo "tradeoff smoke: worker count changed the results:"
            diff "$one" "$four" | head -20
            return 1
        fi &&
        build/tools/safemem_run all --stats --workers 0 --geometry word \
            >"$golden" &&
        if cmp -s "$golden" tests/data/golden_prebank_sweep.txt; then
            echo "tradeoff smoke: --geometry word sweep matches golden"
        else
            echo "tradeoff smoke: --geometry word moved the golden sweep:"
            diff "$golden" tests/data/golden_prebank_sweep.txt | head -20
            return 1
        fi &&
        python3 - "$one" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)

for key in ("bench", "traffic", "batches", "cells", "identical"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["bench"] == "ecc_tradeoff"
assert doc["identical"] is True, "serial vs pool cells diverged"
assert len(doc["cells"]) == 15, f"expected 5 geometries x 3 rates: {doc}"

cells = {(c["geometry"], c["flip_rate"]): c for c in doc["cells"]}
for cell in doc["cells"]:
    for key in ("cycles", "flips", "line_fills", "line_evictions",
                "single_bit_corrected", "edc_passed", "edc_failed",
                "block_decodes", "latent_fault_words",
                "partial_write_rmws", "open_codeword_hits",
                "edc_refreshes", "data_bytes", "redundancy_bytes",
                "overhead"):
        assert key in cell, f"{cell['geometry']}: missing key {key}"

# The tentpole physics: at a zero error rate the effective-bandwidth
# overhead falls strictly as parity codewords grow, and the largest
# codeword beats the per-word SEC-DED baseline.
clean = lambda g: cells[(g, 0.0)]["overhead"]
assert clean("block:512/parity") > clean("block:1024/parity") \
    > clean("block:4096/parity"), \
    [clean(g) for g in ("block:512/parity", "block:1024/parity",
                        "block:4096/parity")]
assert clean("block:4096/parity") < clean("word"), \
    (clean("block:4096/parity"), clean("word"))
# A wider EDC costs bandwidth at the same codeword size.
assert clean("block:1024/crc32") > clean("block:1024/parity")

# Word cells never touch the block datapath; faulted block cells pay
# decodes, and every block cell pays RMWs (separately accounted).
for rate in (0.0, 0.005, 0.05):
    word = cells[("word", rate)]
    assert word["edc_passed"] == 0 and word["block_decodes"] == 0, word
for (geometry, rate), cell in cells.items():
    if geometry == "word":
        continue
    assert cell["partial_write_rmws"] > 0, cell
    assert cell["edc_passed"] > 0, cell
    if rate > 0:
        assert cell["flips"] > 0, cell
        assert cell["edc_failed"] > 0, cell
        assert cell["block_decodes"] > 0, cell
print(f"tradeoff smoke: {len(doc['cells'])} cells, overhead ordering "
      "and decode/RMW accounting OK")
PYEOF
}

notrace_build() {
    # The compiled-out configuration must still build everything; the
    # suite itself runs in the default (traced) configurations above.
    cmake -B build-notrace -S . -DSAFEMEM_TRACE=OFF &&
        cmake --build build-notrace -j "$JOBS"
}

static_analysis() {
    # The lock-discipline gauntlet. The annotations are no-ops under
    # GCC, so each Clang-dependent layer hunts for a Clang binary and
    # SKIPS with a visible warning instead of passing vacuously.
    local status=0

    local clangxx=""
    for candidate in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
                     clang++-17 clang++-16 clang++-15 clang++-14; do
        if command -v "$candidate" >/dev/null 2>&1; then
            clangxx="$candidate"
            break
        fi
    done
    if [ -n "$clangxx" ]; then
        # -Werror=thread-safety: every mutex-guarded structure must
        # carry annotations that hold up under the analysis.
        cmake -B build-tsafety -S . -DSAFEMEM_THREAD_SAFETY=ON \
            -DCMAKE_CXX_COMPILER="$clangxx" &&
            cmake --build build-tsafety -j "$JOBS" || status=1
    else
        echo "static-analysis: WARNING: no clang++ on PATH — the" \
             "-Wthread-safety build is SKIPPED (the annotations are" \
             "compiled as no-ops and NOT being enforced)"
    fi

    scripts/run_clang_tidy.sh || status=1

    # Exit 77 is the harness's "no Clang available" skip, already
    # reported with its own warning; anything else non-zero is real.
    tests/negative_compile/run_negative_compile.sh
    local rc=$?
    if [ "$rc" -ne 0 ] && [ "$rc" -ne 77 ]; then
        status=1
    fi

    python3 tools/lint/lint.py --root . || status=1
    python3 tools/lint/lint.py --self-test || status=1
    return "$status"
}

stage "tier-1 (default build + ctest)" build_and_test build
stage "asan ctest" build_and_test build-asan -DSAFEMEM_ASAN=ON
stage "ubsan ctest" build_and_test build-ubsan -DSAFEMEM_UBSAN=ON
stage "tsan ctest" build_and_test build-tsan -DSAFEMEM_TSAN=ON
stage "bench smoke (hotpath --json)" bench_smoke
stage "bench smoke (matrix --json)" matrix_smoke
stage "campaign smoke (ecc codec zoo)" campaign_smoke
stage "trace smoke (safemem_run --trace + trace_dump)" trace_smoke
stage "multiproc smoke (--procs 2, serial vs parallel)" multiproc_smoke
stage "bank smoke (--banks 4 sweep + bench_banked)" bank_smoke
stage "fleet smoke (bench_fleet sampled sweep)" fleet_smoke
stage "tradeoff smoke (bench_ecc_tradeoff + word golden)" tradeoff_smoke
stage "notrace build (-DSAFEMEM_TRACE=OFF)" notrace_build
stage "static-analysis gauntlet" static_analysis
stage "repo lint" python3 tools/lint/lint.py --root .
stage "lint self-test" python3 tools/lint/lint.py --self-test
stage "format check" scripts/check_format.sh

echo
if [ "${#failures[@]}" -ne 0 ]; then
    echo "ci: FAILED stages: ${failures[*]}"
    exit 1
fi
echo "ci: all stages passed"
