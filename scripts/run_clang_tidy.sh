#!/usr/bin/env bash
# clang-tidy gauntlet over the maintained sources, driven by the
# compile_commands.json that every CMake configure exports (see the
# CMAKE_EXPORT_COMPILE_COMMANDS block in CMakeLists.txt) and the curated
# .clang-tidy profile at the repo root.
#
# Usage: run_clang_tidy.sh [build-dir]
#
# Mirrors check_format.sh: when no clang-tidy binary is available (the
# container image ships GCC only) the check is SKIPPED with a visible
# notice rather than failing — ci.sh surfaces the notice in its log.
set -u

cd "$(dirname "$0")/.."

CLANG_TIDY=""
for candidate in clang-tidy clang-tidy-21 clang-tidy-20 clang-tidy-19 \
                 clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 \
                 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
        CLANG_TIDY="$candidate"
        break
    fi
done

if [ -z "$CLANG_TIDY" ]; then
    echo "run_clang_tidy: WARNING: clang-tidy not installed — the" \
         "static-analysis gauntlet is SKIPPED on this host"
    exit 0
fi

BUILD_DIR="${1:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_clang_tidy: configuring $BUILD_DIR to export compile commands"
    cmake -B "$BUILD_DIR" -S . >/dev/null || exit 1
fi

echo "run_clang_tidy: using $("$CLANG_TIDY" --version | head -2 | tail -1)"
JOBS=$(nproc 2>/dev/null || echo 4)

# WarningsAsErrors: '*' in .clang-tidy turns every enabled finding into
# an error, so a non-zero exit here means real findings, not noise.
if find src -name '*.cc' | sort |
    xargs -P "$JOBS" -n 4 "$CLANG_TIDY" -p "$BUILD_DIR" --quiet; then
    echo "run_clang_tidy: clean"
else
    echo "run_clang_tidy: findings above must be fixed (or suppressed" \
         "with NOLINT and a reason)"
    exit 1
fi
