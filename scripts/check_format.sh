#!/usr/bin/env bash
# Verify formatting of the maintained sources against .clang-format
# without rewriting anything (clang-format --dry-run --Werror).
#
# History is deliberately NOT reformatted wholesale: only the directories
# listed below are checked, and the check is skipped (exit 0, with a
# notice) when no clang-format binary is available — the container image
# does not ship one.
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT=""
for candidate in clang-format clang-format-19 clang-format-18 \
                 clang-format-17 clang-format-16 clang-format-15 \
                 clang-format-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
        CLANG_FORMAT="$candidate"
        break
    fi
done

if [ -z "$CLANG_FORMAT" ]; then
    echo "check_format: clang-format not installed; skipping format check"
    exit 0
fi

echo "check_format: using $("$CLANG_FORMAT" --version)"

status=0
while IFS= read -r file; do
    if ! "$CLANG_FORMAT" --dry-run --Werror "$file"; then
        status=1
    fi
done < <(find src tests bench tools -name '*.cc' -o -name '*.h' \
             -o -name '*.cpp' | sort)

if [ "$status" -ne 0 ]; then
    echo "check_format: formatting violations found (run clang-format -i)"
else
    echo "check_format: clean"
fi
exit "$status"
