/**
 * @file
 * Hot-path microbenchmark: wall-clock cost of the simulator itself.
 *
 * The paper's tables compare *simulated* overheads (SafeMem vs Purify),
 * which only stay trustworthy at production scale if the simulator's own
 * per-access cost is small and measurable. This bench drives the plain
 * CPU access path — no tool attached — and reports host wall-time per
 * million simulated accesses alongside the simulated-cycle totals, which
 * must not change when the hot path is optimised.
 *
 * Phases:
 *   word_hit   hit-dominated single-word loads/stores over a working set
 *              that fits in the L1 model (the Table 3 inner loop shape);
 *   word_miss  pointer-chase over a working set 4x the cache so fills and
 *              writebacks dominate;
 *   block_copy page-sized read/write spans (the allocator/workload bulk
 *              path: one cache touch per line, one translation per page).
 *
 * `--json [--out FILE]` writes BENCH_hotpath.json, the repo's perf
 * baseline; scripts/ci.sh smoke-checks the file shape. Pass
 * `--baseline-ms X` (ms per million word_hit accesses of a reference
 * build) to embed a speedup ratio in the report.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "os/machine.h"
#include "trace/trace.h"

using namespace safemem;

namespace {

struct PhaseResult
{
    std::string name;
    std::uint64_t accesses = 0;     ///< simulated load/store operations
    std::uint64_t bytes = 0;        ///< bytes moved through the cache
    double wallSeconds = 0.0;       ///< host time spent in the phase
    std::uint64_t hits = 0;         ///< cache hits during the phase
    std::uint64_t misses = 0;       ///< cache misses during the phase
    std::uint64_t cycles = 0;       ///< simulated cycles elapsed
};

double
msPerMillion(const PhaseResult &phase)
{
    if (phase.accesses == 0)
        return 0.0;
    // 1 ns/access == 1 ms per million accesses.
    return phase.wallSeconds * 1e9 / static_cast<double>(phase.accesses);
}

double
hitRate(const PhaseResult &phase)
{
    std::uint64_t total = phase.hits + phase.misses;
    return total == 0 ? 0.0
                      : static_cast<double>(phase.hits) /
                            static_cast<double>(total);
}

/** Run @p body and fill a PhaseResult with its deltas. */
template <typename Fn>
PhaseResult
runPhase(Machine &machine, const std::string &name, Fn &&body)
{
    PhaseResult phase;
    phase.name = name;
    std::uint64_t hits0 = machine.cache().stats().get(CacheStat::Hits);
    std::uint64_t misses0 = machine.cache().stats().get(CacheStat::Misses);
    Cycles cycles0 = machine.clock().now();

    auto t0 = std::chrono::steady_clock::now();
    body(phase);
    auto t1 = std::chrono::steady_clock::now();

    phase.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    phase.hits = machine.cache().stats().get(CacheStat::Hits) - hits0;
    phase.misses =
        machine.cache().stats().get(CacheStat::Misses) - misses0;
    phase.cycles = machine.clock().now() - cycles0;
    return phase;
}

void
printPhase(const PhaseResult &phase)
{
    std::printf("%-10s %12llu accesses %9.2f ms  %8.1f ms/Macc  "
                "hit-rate %5.1f%%  %12llu cycles\n",
                phase.name.c_str(),
                static_cast<unsigned long long>(phase.accesses),
                phase.wallSeconds * 1e3, msPerMillion(phase),
                hitRate(phase) * 100.0,
                static_cast<unsigned long long>(phase.cycles));
}

void
appendPhaseJson(std::string &out, const PhaseResult &phase, bool last)
{
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\n"
        "      \"name\": \"%s\",\n"
        "      \"accesses\": %llu,\n"
        "      \"bytes\": %llu,\n"
        "      \"wall_seconds\": %.6f,\n"
        "      \"ms_per_million_accesses\": %.3f,\n"
        "      \"hits\": %llu,\n"
        "      \"misses\": %llu,\n"
        "      \"hit_rate\": %.6f,\n"
        "      \"simulated_cycles\": %llu\n"
        "    }%s\n",
        phase.name.c_str(),
        static_cast<unsigned long long>(phase.accesses),
        static_cast<unsigned long long>(phase.bytes),
        phase.wallSeconds, msPerMillion(phase),
        static_cast<unsigned long long>(phase.hits),
        static_cast<unsigned long long>(phase.misses), hitRate(phase),
        static_cast<unsigned long long>(phase.cycles), last ? "" : ",");
    out += buffer;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::string out_path = "BENCH_hotpath.json";
    std::uint64_t word_accesses = 4'000'000;
    double baseline_ms = 0.0;
    std::string baseline_note;
    std::string trace_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--accesses" && i + 1 < argc) {
            word_accesses = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--baseline-ms" && i + 1 < argc) {
            baseline_ms = std::strtod(argv[++i], nullptr);
        } else if (arg == "--baseline-note" && i + 1 < argc) {
            baseline_note = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json] [--out FILE] [--accesses N]"
                         " [--baseline-ms X [--baseline-note S]]"
                         " [--trace FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    setLogQuiet(true);

    MachineConfig config;
    config.memoryBytes = 64u << 20;
    // Tracing enabled measures the flight recorder's wall-clock cost on
    // the hot path; simulated cycles must be identical either way.
    std::optional<Trace> trace;
    if (!trace_path.empty()) {
        trace.emplace();
        config.trace = &*trace;
    }
    Machine machine(config);

    // Working sets: the default cache is 256 sets x 8 ways x 64 B = 128 KiB.
    constexpr std::size_t kHotBytes = 32 * 1024;  // fits: hit-dominated
    constexpr std::size_t kColdBytes = 512 * 1024; // 4x cache: miss-heavy
    constexpr std::size_t kBlockBytes = 64 * 1024;

    VirtAddr hot = machine.kernel().mapRegion(kHotBytes);
    VirtAddr cold = machine.kernel().mapRegion(kColdBytes);
    VirtAddr block_src = machine.kernel().mapRegion(kBlockBytes);
    VirtAddr block_dst = machine.kernel().mapRegion(kBlockBytes);

    std::vector<PhaseResult> phases;

    // -- word_hit: strided single-word loads/stores inside the hot set.
    phases.push_back(runPhase(machine, "word_hit", [&](PhaseResult &phase) {
        constexpr std::size_t kWords = kHotBytes / 8;
        std::uint64_t sum = 0;
        // Deterministic mixed pattern: 3 loads to 1 store, stride chosen
        // co-prime with the word count so every line is revisited.
        std::uint64_t index = 1;
        for (std::uint64_t i = 0; i < word_accesses; ++i) {
            index = (index + 2654435761ULL) % kWords;
            VirtAddr addr = hot + index * 8;
            if ((i & 3) == 3)
                machine.store<std::uint64_t>(addr, i);
            else
                sum += machine.load<std::uint64_t>(addr);
        }
        phase.accesses = word_accesses;
        phase.bytes = word_accesses * 8;
        if (sum == 0xdeadbeef) // defeat dead-code elimination
            std::printf("!\n");
    }));

    // -- word_miss: same shape over 4x the cache, so fills dominate.
    phases.push_back(runPhase(machine, "word_miss", [&](PhaseResult &phase) {
        constexpr std::size_t kLines = kColdBytes / kCacheLineSize;
        std::uint64_t accesses = word_accesses / 8;
        std::uint64_t sum = 0;
        std::uint64_t index = 1;
        for (std::uint64_t i = 0; i < accesses; ++i) {
            index = (index + 2654435761ULL) % kLines;
            VirtAddr addr = cold + index * kCacheLineSize;
            if ((i & 3) == 3)
                machine.store<std::uint64_t>(addr, i);
            else
                sum += machine.load<std::uint64_t>(addr);
        }
        phase.accesses = accesses;
        phase.bytes = accesses * 8;
        if (sum == 0xdeadbeef)
            std::printf("!\n");
    }));

    // -- block_copy: page-sized spans through read()/write(), the bulk
    //    path workloads and the allocator use.
    phases.push_back(runPhase(machine, "block_copy", [&](PhaseResult &phase) {
        std::vector<std::uint8_t> buffer(kPageSize);
        std::uint64_t rounds = word_accesses / 2000;
        std::uint64_t ops = 0;
        for (std::uint64_t r = 0; r < rounds; ++r) {
            std::size_t offset = (r % (kBlockBytes / kPageSize)) * kPageSize;
            machine.read(block_src + offset, buffer.data(), kPageSize);
            machine.write(block_dst + offset, buffer.data(), kPageSize);
            ops += 2;
        }
        phase.accesses = ops;
        phase.bytes = ops * kPageSize;
    }));

    std::printf("hot-path bench: %llu word accesses (working sets: "
                "%zu KiB hot, %zu KiB cold)\n\n",
                static_cast<unsigned long long>(word_accesses),
                kHotBytes / 1024, kColdBytes / 1024);
    PhaseResult total;
    total.name = "total";
    for (const PhaseResult &phase : phases) {
        printPhase(phase);
        total.accesses += phase.accesses;
        total.bytes += phase.bytes;
        total.wallSeconds += phase.wallSeconds;
        total.hits += phase.hits;
        total.misses += phase.misses;
        total.cycles += phase.cycles;
    }
    std::printf("\n");
    printPhase(total);

    double word_hit_ms = msPerMillion(phases[0]);
    if (baseline_ms > 0.0) {
        std::printf("\nword_hit vs baseline: %.1f ms/Macc -> %.1f ms/Macc "
                    "(%.2fx)\n",
                    baseline_ms, word_hit_ms, baseline_ms / word_hit_ms);
    }

    if (json) {
        std::string doc;
        doc += "{\n";
        doc += "  \"bench\": \"hotpath\",\n";
        char buffer[512];
        std::snprintf(buffer, sizeof(buffer),
                      "  \"word_accesses\": %llu,\n",
                      static_cast<unsigned long long>(word_accesses));
        doc += buffer;
        doc += "  \"phases\": [\n";
        for (std::size_t i = 0; i < phases.size(); ++i)
            appendPhaseJson(doc, phases[i], i + 1 == phases.size());
        doc += "  ],\n";
        std::snprintf(
            buffer, sizeof(buffer),
            "  \"total_accesses\": %llu,\n"
            "  \"total_wall_seconds\": %.6f,\n"
            "  \"simulated_cycles_total\": %llu",
            static_cast<unsigned long long>(total.accesses),
            total.wallSeconds,
            static_cast<unsigned long long>(total.cycles));
        doc += buffer;
        if (baseline_ms > 0.0) {
            std::snprintf(
                buffer, sizeof(buffer),
                ",\n  \"baseline\": {\n"
                "    \"word_hit_ms_per_million_accesses\": %.3f,\n"
                "    \"note\": \"%s\"\n"
                "  },\n"
                "  \"word_hit_speedup_vs_baseline\": %.3f",
                baseline_ms, baseline_note.c_str(),
                baseline_ms / word_hit_ms);
            doc += buffer;
        }
        doc += "\n}\n";

        std::FILE *file = std::fopen(out_path.c_str(), "w");
        if (!file) {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::fwrite(doc.data(), 1, doc.size(), file);
        std::fclose(file);
        std::printf("\nwrote %s\n", out_path.c_str());
    }

    if (trace) {
        std::ofstream trace_file(trace_path, std::ios::binary);
        if (!trace_file) {
            std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
            return 1;
        }
        writeTraceSection(trace_file, *trace, "hotpath");
        std::printf("\ntrace: %llu events emitted (%zu retained) -> %s\n",
                    static_cast<unsigned long long>(trace->emitted()),
                    trace->size(), trace_path.c_str());
    }
    return 0;
}
