/**
 * @file
 * Reproduces Table 3: bug detection plus run-time overhead of SafeMem
 * (ML only / MC only / ML+MC) against the Purify model, per application.
 *
 * Detection runs use buggy inputs; overhead runs use normal inputs so
 * the bugs do not perturb the measurement, exactly as in the paper.
 */

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "workloads/driver.h"

using namespace safemem;

int
main()
{
    setLogQuiet(true);

    std::printf("Table 3: time overhead (%%) of SafeMem vs Purify\n");
    std::printf("(paper: SafeMem ML+MC 1.6%%-14.4%%, Purify several x to"
                " tens of x; reduction 2-3 orders of magnitude)\n\n");
    std::printf("%-8s %-9s %10s %10s %10s %12s %10s\n", "app",
                "detected?", "only-ML%", "only-MC%", "ML+MC%",
                "purify%", "reduction");

    for (const std::string &app : appNames()) {
        RunParams params;
        params.requests = defaultRequests(app);
        params.seed = 42;

        // Detection: buggy inputs, full SafeMem.
        params.buggy = true;
        RunResult detect = runWorkload(app, ToolKind::SafeMemBoth, params);

        // Overhead: normal inputs.
        params.buggy = false;
        RunResult base = runWorkload(app, ToolKind::None, params);
        RunResult ml = runWorkload(app, ToolKind::SafeMemML, params);
        RunResult mc = runWorkload(app, ToolKind::SafeMemMC, params);
        RunResult both = runWorkload(app, ToolKind::SafeMemBoth, params);
        RunResult purify = runWorkload(app, ToolKind::Purify, params);

        double ml_pct = overheadPercent(ml, base);
        double mc_pct = overheadPercent(mc, base);
        double both_pct = overheadPercent(both, base);
        double purify_pct = overheadPercent(purify, base);
        double reduction =
            both_pct > 0.0 ? purify_pct / both_pct : 0.0;

        std::printf("%-8s %-9s %10.1f %10.1f %10.1f %12.1f %9.0fX\n",
                    app.c_str(), detect.bugDetected ? "YES" : "no",
                    ml_pct, mc_pct, both_pct, purify_pct, reduction);
    }
    return 0;
}
