/**
 * @file
 * Reproduces Table 3: bug detection plus run-time overhead of SafeMem
 * (ML only / MC only / ML+MC) against the Purify model, per application.
 *
 * Detection runs use buggy inputs; overhead runs use normal inputs so
 * the bugs do not perturb the measurement, exactly as in the paper.
 * All 42 cells (7 apps x 6 configurations) go through runMatrix, which
 * fans them out across cores; results are bit-identical to a
 * sequential sweep.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "workloads/driver.h"

using namespace safemem;

namespace {

/** The six runs Table 3 needs per application, in column order. */
enum Cell { kDetect, kBase, kMl, kMc, kBoth, kPurify, kCellsPerApp };

} // namespace

int
main()
{
    const Log quiet = Log::quiet();

    std::vector<RunSpec> specs;
    for (const std::string &app : appNames()) {
        RunParams normal = paperParams(app, false);
        normal.log = &quiet;
        RunParams buggy = paperParams(app, true);
        buggy.log = &quiet;

        // Detection: buggy inputs, full SafeMem. Overhead: normal inputs.
        specs.push_back({app, ToolKind::SafeMemBoth, buggy});
        specs.push_back({app, ToolKind::None, normal});
        specs.push_back({app, ToolKind::SafeMemML, normal});
        specs.push_back({app, ToolKind::SafeMemMC, normal});
        specs.push_back({app, ToolKind::SafeMemBoth, normal});
        specs.push_back({app, ToolKind::Purify, normal});
    }
    std::vector<MatrixCell> cells = runMatrix(specs, /*workers=*/0);

    std::printf("Table 3: time overhead (%%) of SafeMem vs Purify\n");
    std::printf("(paper: SafeMem ML+MC 1.6%%-14.4%%, Purify several x to"
                " tens of x; reduction 2-3 orders of magnitude)\n\n");
    std::printf("%-8s %-9s %10s %10s %10s %12s %10s\n", "app",
                "detected?", "only-ML%", "only-MC%", "ML+MC%",
                "purify%", "reduction");

    for (std::size_t i = 0; i < cells.size(); i += kCellsPerApp) {
        const std::string &app = cells[i].spec.app;
        for (int c = 0; c < kCellsPerApp; ++c) {
            if (!cells[i + c].ok()) {
                std::printf("%-8s run failed: %s\n", app.c_str(),
                            cells[i + c].error.c_str());
                return 1;
            }
        }
        const RunResult &detect = cells[i + kDetect].result;
        const RunResult &base = cells[i + kBase].result;

        double ml_pct = overheadPercent(cells[i + kMl].result, base);
        double mc_pct = overheadPercent(cells[i + kMc].result, base);
        double both_pct = overheadPercent(cells[i + kBoth].result, base);
        double purify_pct =
            overheadPercent(cells[i + kPurify].result, base);
        double reduction =
            both_pct > 0.0 ? purify_pct / both_pct : 0.0;

        std::printf("%-8s %-9s %10.1f %10.1f %10.1f %12.1f %9.0fX\n",
                    app.c_str(), detect.bugDetected ? "YES" : "no",
                    ml_pct, mc_pct, both_pct, purify_pct, reduction);
    }
    return 0;
}
