/**
 * @file
 * Validates Figure 2: the WatchMemory implementation — disable ECC,
 * flip 3 fixed bits of the watched line, flush, re-enable ECC — and the
 * resulting first-access fault, with a per-step simulated cost
 * breakdown.
 */

#include <cstdio>

#include "common/logging.h"
#include "ecc/hamming.h"
#include "ecc/scramble.h"
#include "os/machine.h"

using namespace safemem;

namespace {

void
expect(bool condition, const char *what)
{
    std::printf("  [%s] %s\n", condition ? "ok" : "FAIL", what);
}

} // namespace

int
main()
{
    setLogQuiet(true);
    Machine machine;
    Kernel &kernel = machine.kernel();
    const ScramblePattern &pattern = defaultScramblePattern();

    std::printf("Figure 2: implementation of WatchMemory\n\n");
    std::printf("scramble signature: flip data bits %d, %d, %d "
                "(mask 0x%llx)\n\n",
                pattern.bits[0], pattern.bits[1], pattern.bits[2],
                static_cast<unsigned long long>(pattern.mask()));

    VirtAddr region = kernel.mapRegion(kPageSize);
    std::uint64_t original = 0xcafebabe12345678ULL;
    machine.store<std::uint64_t>(region, original);

    // Step sequence: disable ECC -> scramble data -> flush -> enable.
    Cycles before = machine.clock().now();
    kernel.watchMemory(region, kCacheLineSize);
    Cycles watch_cost = machine.clock().now() - before;

    PhysAddr frame = kernel.translate(region + kPageSize - 1) -
                     (kPageSize - 1);
    std::uint64_t in_memory = machine.controller().peekWord(frame);
    std::uint8_t stored_check =
        machine.physicalMemory().readCheck(frame);

    std::printf("after WatchMemory (simulated cost %.2f us):\n",
                cyclesToMicros(watch_cost));
    expect(in_memory == pattern.apply(original),
           "memory holds the scrambled data (3 bits flipped)");
    expect(stored_check == defaultCodec().encode(original),
           "stored ECC code still matches the *original* data");
    expect(!machine.cache().contains(frame),
           "line flushed from the cache");
    expect(defaultCodec()
                   .decode(in_memory, stored_check)
                   .status == EccDecodeStatus::Uncorrectable,
           "mismatch decodes as an uncorrectable multi-bit fault");

    // First access: the ECC fault fires and is delivered to the
    // registered user handler, which clears the watch.
    int faults = 0;
    kernel.registerEccFaultHandler(
        [&](const UserEccFault &fault) {
            ++faults;
            kernel.disableWatchMemory(
                alignDown(fault.vaddr, kCacheLineSize), kCacheLineSize);
            return FaultDecision::Handled;
        });

    std::uint64_t read_back = machine.load<std::uint64_t>(region);
    std::printf("\nfirst access to the watched line:\n");
    expect(faults == 1, "exactly one ECC fault delivered");
    expect(read_back == original,
           "access restarted and returned the original data");
    expect(!kernel.isWatched(region), "watch removed by the handler");

    std::uint64_t again = machine.load<std::uint64_t>(region);
    expect(again == original && faults == 1,
           "subsequent accesses run fault-free");

    // Cost breakdown for Table 2 cross-checking.
    Machine m2;
    VirtAddr r2 = m2.kernel().mapRegion(kPageSize);
    Cycles t0 = m2.clock().now();
    m2.kernel().watchMemory(r2, kCacheLineSize);
    Cycles t1 = m2.clock().now();
    m2.kernel().disableWatchMemory(r2, kCacheLineSize);
    Cycles t2 = m2.clock().now();
    std::printf("\nsimulated syscall costs (1 line):\n");
    std::printf("  WatchMemory        %6.2f us\n",
                cyclesToMicros(t1 - t0));
    std::printf("  DisableWatchMemory %6.2f us\n",
                cyclesToMicros(t2 - t1));
    return 0;
}
