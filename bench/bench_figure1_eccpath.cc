/**
 * @file
 * Validates Figure 1: the read/write datapath of ECC memory.
 *
 * Figure 1 is an architecture diagram, not a measurement, so this bench
 * exercises and prints each depicted path on the simulated controller:
 * encode-on-write, check-on-read, transparent single-bit correction,
 * multi-bit interrupt delivery, Check-Only reporting, and scrubbing.
 */

#include <cstdio>

#include "common/logging.h"
#include "ecc/hamming.h"
#include "mem/memory_controller.h"
#include "mem/physical_memory.h"

using namespace safemem;

namespace {

int g_interrupts = 0;
EccFaultInfo g_last_fault;

void
expect(bool condition, const char *what)
{
    std::printf("  [%s] %s\n", condition ? "ok" : "FAIL", what);
}

} // namespace

int
main()
{
    setLogQuiet(true);
    CycleClock clock;
    PhysicalMemory memory(1 << 20);
    MemoryController controller(memory, clock);
    controller.setInterruptHandler([](const EccFaultInfo &info) {
        ++g_interrupts;
        g_last_fault = info;
    });

    std::printf("Figure 1: ECC memory read/write datapath\n\n");

    // (a) Write to ECC memory: the controller encodes a check byte.
    std::printf("(a) write path: data + generated ECC code stored\n");
    LineData line{};
    setLineWord(line, 0, 0x1122334455667788ULL);
    controller.evictLine(0, line);
    std::uint8_t stored_check = memory.readCheck(0);
    std::uint8_t expected_check =
        defaultCodec().encode(0x1122334455667788ULL);
    expect(stored_check == expected_check,
           "stored check byte equals encoder output");

    // (b) Read path: data re-encoded and compared; clean data passes.
    std::printf("(b) read path: clean line decodes without event\n");
    LineData out{};
    bool ok = controller.fillLine(0, out);
    expect(ok && lineWord(out, 0) == 0x1122334455667788ULL,
           "data returned unmodified, no interrupt");

    // (b) Single-bit error: corrected transparently on read.
    std::printf("(b) read path: single-bit error corrected on the fly\n");
    memory.flipDataBit(0, 17);
    ok = controller.fillLine(0, out);
    expect(ok && lineWord(out, 0) == 0x1122334455667788ULL,
           "flipped bit corrected during the fill");
    expect(controller.stats().get("single_bit_corrected") == 1,
           "controller counted one corrected single-bit error");
    expect(g_interrupts == 0, "no interrupt for a correctable error");

    // (b) Multi-bit error: detected, reported to the processor.
    std::printf("(b) read path: multi-bit error raises an interrupt\n");
    memory.flipDataBit(0, 3);
    memory.flipDataBit(0, 29);
    ok = controller.fillLine(0, out);
    expect(!ok, "fill reports failure");
    expect(g_interrupts == 1, "interrupt delivered to the handler");
    expect(g_last_fault.kind == EccFaultKind::MultiBit,
           "fault classified as multi-bit");

    // Repair for the next stage.
    controller.writeWordDeviceOp(0, 0x1122334455667788ULL);

    // Check-Only mode: detects and reports, never corrects.
    std::printf("(-) Check-Only mode: reported but not corrected\n");
    controller.setMode(EccMode::CheckOnly);
    memory.flipDataBit(0, 40);
    int before = g_interrupts;
    ok = controller.fillLine(0, out);
    expect(ok, "single-bit error does not fail the fill");
    expect(g_interrupts == before + 1, "but it is reported");
    expect(memory.readWord(0) != 0x1122334455667788ULL,
           "stored data left uncorrected");
    controller.setMode(EccMode::CorrectError);

    // Scrubbing: background pass heals the stored copy.
    std::printf("(-) Correct-and-Scrub: scrub pass heals memory\n");
    controller.setMode(EccMode::CorrectAndScrub);
    controller.scrubRange(0, 1);
    expect(memory.readWord(0) == 0x1122334455667788ULL,
           "scrubber rewrote the corrected word");

    std::printf("\ncontroller stats:\n");
    for (const auto &[name, value] : controller.stats().all())
        std::printf("  %-24s %10llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
    return 0;
}
