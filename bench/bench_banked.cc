/**
 * @file
 * Measures the banked memory system: the consolidated ypserv1 workload
 * swept over bank counts {1,2,4,8} x process counts {1,2,4}. Every cell
 * is executed twice — serially on the calling thread and through the
 * parallel run matrix — and the two results must be bit-identical, the
 * same contract the banks=1 golden tests enforce against the pre-bank
 * machine. The JSON reports, per cell, the wall clock, the simulated
 * cycle count, and how the BankGate classified the scheduler hand-offs
 * (disjoint bank footprints vs gated), i.e. how much parallelism the
 * bank partition exposes.
 *
 *   build/bench/bench_banked                 # human-readable
 *   build/bench/bench_banked --json          # BENCH_banked.json shape
 *   build/bench/bench_banked --requests 200  # reduced load (CI smoke)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "workloads/driver.h"

using namespace safemem;

namespace {

struct Cell
{
    std::uint32_t banks = 1;
    std::uint32_t procs = 1;
    double seconds = 0.0;
    Cycles totalCycles = 0;
    std::uint64_t disjoint = 0;
    std::uint64_t gated = 0;
    bool bugDetected = false;
    bool identical = false;
};

std::uint64_t
statOrZero(const RunResult &result, const char *key)
{
    auto it = result.stats.find(key);
    return it == result.stats.end() ? 0 : it->second;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::uint64_t requests = 400;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--requests" && i + 1 < argc) {
            requests = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: bench_banked [--json] [--requests <n>]\n");
            return 1;
        }
    }

    const Log quiet = Log::quiet();
    std::vector<Cell> cells;
    bool all_identical = true;

    for (std::uint32_t banks : {1u, 2u, 4u, 8u}) {
        for (std::uint32_t procs : {1u, 2u, 4u}) {
            RunSpec spec;
            spec.app = "ypserv1";
            spec.tool = ToolKind::SafeMemBoth;
            spec.params = paperParams("ypserv1", true);
            spec.params.requests = requests;
            spec.params.banks = banks;
            spec.params.log = &quiet;
            spec.procs = procs;

            const auto start = std::chrono::steady_clock::now();
            RunResult serial = procs == 1
                                   ? runWorkload(spec.app, spec.tool,
                                                 spec.params)
                                   : runConsolidated(spec);
            const auto stop = std::chrono::steady_clock::now();

            // The same cell through the parallel matrix: worker threads
            // must not move a single byte of the result.
            std::vector<MatrixCell> matrix =
                runMatrix({spec, spec}, 4);
            bool identical = matrix[0].ok() && matrix[1].ok() &&
                             matrix[0].result == serial &&
                             matrix[1].result == serial;
            all_identical = all_identical && identical;

            Cell cell;
            cell.banks = banks;
            cell.procs = procs;
            cell.seconds =
                std::chrono::duration<double>(stop - start).count();
            cell.totalCycles = serial.totalCycles;
            cell.disjoint =
                statOrZero(serial, "sched.bank_disjoint_handoffs");
            cell.gated = statOrZero(serial, "sched.bank_gated_handoffs");
            cell.bugDetected = serial.bugDetected;
            cell.identical = identical;
            cells.push_back(cell);
        }
    }

    if (json) {
        std::printf("{\n");
        std::printf("  \"bench\": \"banked\",\n");
        std::printf("  \"app\": \"ypserv1\",\n");
        std::printf("  \"requests\": %llu,\n",
                    static_cast<unsigned long long>(requests));
        std::printf("  \"cells\": [\n");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Cell &c = cells[i];
            std::printf("    {\"banks\": %u, \"procs\": %u, "
                        "\"seconds\": %.3f, \"total_cycles\": %llu, "
                        "\"disjoint_handoffs\": %llu, "
                        "\"gated_handoffs\": %llu, "
                        "\"bug_detected\": %s, \"identical\": %s}%s\n",
                        c.banks, c.procs, c.seconds,
                        static_cast<unsigned long long>(c.totalCycles),
                        static_cast<unsigned long long>(c.disjoint),
                        static_cast<unsigned long long>(c.gated),
                        c.bugDetected ? "true" : "false",
                        c.identical ? "true" : "false",
                        i + 1 < cells.size() ? "," : "");
        }
        std::printf("  ],\n");
        std::printf("  \"identical\": %s\n",
                    all_identical ? "true" : "false");
        std::printf("}\n");
    } else {
        std::printf("banked memory sweep: ypserv1, %llu requests\n",
                    static_cast<unsigned long long>(requests));
        std::printf("  %5s %5s %9s %14s %9s %6s %9s %9s\n", "banks",
                    "procs", "seconds", "cycles", "disjoint", "gated",
                    "detected", "identical");
        for (const Cell &c : cells)
            std::printf("  %5u %5u %9.3f %14llu %9llu %6llu %9s %9s\n",
                        c.banks, c.procs, c.seconds,
                        static_cast<unsigned long long>(c.totalCycles),
                        static_cast<unsigned long long>(c.disjoint),
                        static_cast<unsigned long long>(c.gated),
                        c.bugDetected ? "yes" : "NO",
                        c.identical ? "yes" : "NO");
        std::printf("serial vs matrix results bit-identical: %s\n",
                    all_identical ? "yes" : "NO");
    }
    return all_identical ? 0 : 1;
}
