/**
 * @file
 * The protection-geometry trade-off lab: a synthetic sequential stream
 * (write a 64 KiB buffer front to back, flush, read it back) swept over
 * protection geometries x injected single-bit error rates. Per cell the
 * JSON reports the simulated cycle count and the redundancy-bandwidth
 * ledger the controller keeps: effective-bandwidth overhead (redundancy
 * bytes / data bytes) falls as codewords grow, while the EDC-miss block
 * decodes and the partial-write RMWs that pay for it are accounted
 * separately. The word cell's byte ledger is the analytic per-word
 * SEC-DED cost (one check byte per 64-bit group, both directions).
 *
 * Every cell is computed twice — serially and on a thread pool — and
 * the two results must be bit-identical for any worker count.
 *
 *   build/bench/bench_ecc_tradeoff                # human-readable
 *   build/bench/bench_ecc_tradeoff --json         # BENCH shape
 *   build/bench/bench_ecc_tradeoff --batches 4    # reduced (CI smoke)
 *   build/bench/bench_ecc_tradeoff --workers 8
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/heap_allocator.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "ecc/geometry.h"
#include "os/machine.h"

using namespace safemem;

namespace {

constexpr std::size_t kBufferBytes = 64 * 1024;
constexpr std::size_t kChunkBytes = 1024;

struct CellSpec
{
    ProtectionGeometry geometry;
    double flipRate = 0.0; ///< per-line single-bit-flip probability/batch
};

struct CellResult
{
    Cycles cycles = 0;
    std::uint64_t lineFills = 0;
    std::uint64_t lineEvictions = 0;
    std::uint64_t edcPassed = 0;
    std::uint64_t edcFailed = 0;
    std::uint64_t blockDecodes = 0;
    std::uint64_t latentFaultWords = 0;
    std::uint64_t partialWriteRmws = 0;
    std::uint64_t openCodewordHits = 0;
    std::uint64_t edcRefreshes = 0;
    std::uint64_t singleBitCorrected = 0;
    std::uint64_t dataBytes = 0;       ///< demand bytes, both directions
    std::uint64_t redundancyBytes = 0; ///< EDC+ECC+RMW bytes, both ways
    std::uint64_t flipsInjected = 0;

    bool operator==(const CellResult &) const = default;

    double
    overhead() const
    {
        return dataBytes == 0
                   ? 0.0
                   : static_cast<double>(redundancyBytes) / dataBytes;
    }
};

/**
 * One cell: a fresh machine, sequential stream traffic with seeded
 * single-bit fault injection between the writeback flush and the
 * read-back. Fully deterministic in (spec, batches, seed).
 */
CellResult
runCell(const CellSpec &spec, std::uint64_t batches, std::uint64_t seed)
{
    MachineConfig config{32u << 20, CacheConfig{64, 4}, 1024};
    config.banks = 4;
    config.geometry = spec.geometry;
    Machine machine(config);
    machine.kernel().setPanicOnHardwareError(false);
    HeapAllocator allocator(machine);

    // Line-align the streamed buffer so injected flips target whole
    // stored lines.
    VirtAddr raw = allocator.allocate(kBufferBytes + kCacheLineSize);
    VirtAddr buffer = alignUp(raw, kCacheLineSize);
    const std::size_t lines = kBufferBytes / kCacheLineSize;

    Rng rng(seed * 40503 + 11);
    std::vector<std::uint8_t> chunk(kChunkBytes);
    std::vector<std::uint8_t> sink(kChunkBytes);

    CellResult out;
    for (std::uint64_t batch = 0; batch < batches; ++batch) {
        // Produce: sequential chunked writes, front to back.
        for (std::size_t off = 0; off < kBufferBytes; off += kChunkBytes) {
            auto salt = static_cast<std::uint8_t>(rng.next());
            for (std::size_t i = 0; i < kChunkBytes; ++i)
                chunk[i] = static_cast<std::uint8_t>(i + off + salt);
            machine.write(buffer + off, chunk.data(), kChunkBytes);
        }
        // Push every dirty line to DRAM so the flips below land on
        // stored data and the read-back streams fills from memory.
        machine.cache().flushAll();

        // Rain: each stored line takes at most one single-bit data
        // flip per batch, healed by the next decode that sees it.
        for (std::size_t l = 0; l < lines; ++l) {
            if (!rng.chance(spec.flipRate))
                continue;
            VirtAddr vline = buffer + l * kCacheLineSize;
            PhysAddr pline = *machine.kernel().peekTranslate(vline);
            int bit = static_cast<int>(rng.next() % 64);
            auto word = static_cast<PhysAddr>(rng.next() % 8);
            machine.physicalMemory().flipDataBit(
                pline + word * kEccGroupSize, bit);
            ++out.flipsInjected;
        }

        // Drain: sequential read-back of the whole buffer.
        for (std::size_t off = 0; off < kBufferBytes; off += kChunkBytes)
            machine.read(buffer + off, sink.data(), kChunkBytes);
    }
    machine.cache().flushAll();
    allocator.deallocate(raw);

    const StatSet &ctrl = machine.controller().stats();
    const StatSet &geom = machine.controller().geometryStats();
    out.cycles = machine.clock().now();
    out.lineFills = ctrl.get(ControllerStat::LineFills);
    out.lineEvictions = ctrl.get(ControllerStat::LineEvictions);
    out.singleBitCorrected = ctrl.get(ControllerStat::SingleBitCorrected);
    if (spec.geometry.isWord()) {
        // The word datapath moves one check byte per 64-bit group with
        // every fill and writeback: a fixed 12.5% of the data bytes.
        out.dataBytes =
            (out.lineFills + out.lineEvictions) * kCacheLineSize;
        out.redundancyBytes =
            (out.lineFills + out.lineEvictions) * kEccGroupsPerLine;
    } else {
        out.edcPassed = geom.get(GeometryStat::EdcChecksPassed);
        out.edcFailed = geom.get(GeometryStat::EdcChecksFailed);
        out.blockDecodes = geom.get(GeometryStat::BlockDecodes);
        out.latentFaultWords = geom.get(GeometryStat::LatentFaultWords);
        out.partialWriteRmws = geom.get(GeometryStat::PartialWriteRmws);
        out.openCodewordHits = geom.get(GeometryStat::OpenCodewordHits);
        out.edcRefreshes = geom.get(GeometryStat::EdcRefreshes);
        out.dataBytes = geom.get(GeometryStat::DataBytesRead) +
                        geom.get(GeometryStat::DataBytesWritten);
        out.redundancyBytes =
            geom.get(GeometryStat::RedundancyBytesRead) +
            geom.get(GeometryStat::RedundancyBytesWritten);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::uint64_t batches = 24;
    unsigned workers = 4;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--batches" && i + 1 < argc) {
            batches = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--workers" && i + 1 < argc) {
            workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr, "usage: bench_ecc_tradeoff [--json] "
                                 "[--batches <n>] [--workers <n>]\n");
            return 1;
        }
    }

    const std::uint64_t seed = 42;
    std::vector<CellSpec> specs;
    for (const char *name :
         {"word", "block:512", "block:1024", "block:4096",
          "block:1024/crc32"}) {
        for (double rate : {0.0, 0.005, 0.05}) {
            CellSpec spec;
            spec.geometry = *parseGeometry(name);
            spec.flipRate = rate;
            specs.push_back(spec);
        }
    }

    // Serial pass (timed per cell), then the same cells fanned out on a
    // pool: worker threads must not move a single byte of any result.
    std::vector<CellResult> serial(specs.size());
    std::vector<double> seconds(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto start = std::chrono::steady_clock::now();
        serial[i] = runCell(specs[i], batches, seed);
        const auto stop = std::chrono::steady_clock::now();
        seconds[i] = std::chrono::duration<double>(stop - start).count();
    }

    std::vector<CellResult> parallel(specs.size());
    {
        ThreadPool pool(workers);
        for (std::size_t i = 0; i < specs.size(); ++i)
            pool.submit([&, i] {
                parallel[i] = runCell(specs[i], batches, seed);
            });
        pool.drain();
    }

    bool all_identical = true;
    for (std::size_t i = 0; i < specs.size(); ++i)
        all_identical = all_identical && serial[i] == parallel[i];

    if (json) {
        std::printf("{\n");
        std::printf("  \"bench\": \"ecc_tradeoff\",\n");
        std::printf("  \"traffic\": \"sequential stream, %zu B buffer, "
                    "%zu B chunks\",\n",
                    kBufferBytes, kChunkBytes);
        std::printf("  \"batches\": %llu,\n",
                    static_cast<unsigned long long>(batches));
        std::printf("  \"cells\": [\n");
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const CellResult &c = serial[i];
            // No wall-clock fields in the JSON: CI byte-compares the
            // documents across worker counts (timings live in the
            // table output).
            std::printf(
                "    {\"geometry\": \"%s\", \"flip_rate\": %.3f, "
                "\"cycles\": %llu, "
                "\"flips\": %llu, \"line_fills\": %llu, "
                "\"line_evictions\": %llu, \"single_bit_corrected\": "
                "%llu, \"edc_passed\": %llu, \"edc_failed\": %llu, "
                "\"block_decodes\": %llu, \"latent_fault_words\": %llu, "
                "\"partial_write_rmws\": %llu, \"open_codeword_hits\": "
                "%llu, \"edc_refreshes\": %llu, \"data_bytes\": %llu, "
                "\"redundancy_bytes\": %llu, \"overhead\": %.5f}%s\n",
                geometryName(specs[i].geometry).c_str(), specs[i].flipRate,
                static_cast<unsigned long long>(c.cycles),
                static_cast<unsigned long long>(c.flipsInjected),
                static_cast<unsigned long long>(c.lineFills),
                static_cast<unsigned long long>(c.lineEvictions),
                static_cast<unsigned long long>(c.singleBitCorrected),
                static_cast<unsigned long long>(c.edcPassed),
                static_cast<unsigned long long>(c.edcFailed),
                static_cast<unsigned long long>(c.blockDecodes),
                static_cast<unsigned long long>(c.latentFaultWords),
                static_cast<unsigned long long>(c.partialWriteRmws),
                static_cast<unsigned long long>(c.openCodewordHits),
                static_cast<unsigned long long>(c.edcRefreshes),
                static_cast<unsigned long long>(c.dataBytes),
                static_cast<unsigned long long>(c.redundancyBytes),
                c.overhead(), i + 1 < specs.size() ? "," : "");
        }
        std::printf("  ],\n");
        std::printf("  \"identical\": %s\n",
                    all_identical ? "true" : "false");
        std::printf("}\n");
    } else {
        std::printf("protection-geometry trade-off: sequential stream, "
                    "%llu batches\n",
                    static_cast<unsigned long long>(batches));
        std::printf("  %-16s %6s %12s %9s %9s %8s %8s %7s %9s\n",
                    "geometry", "rate", "cycles", "edc_miss", "decodes",
                    "rmws", "overhead", "wall_s", "identical");
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const CellResult &c = serial[i];
            std::printf(
                "  %-16s %6.3f %12llu %9llu %9llu %8llu %7.2f%% %7.3f %9s\n",
                geometryName(specs[i].geometry).c_str(), specs[i].flipRate,
                static_cast<unsigned long long>(c.cycles),
                static_cast<unsigned long long>(c.edcFailed),
                static_cast<unsigned long long>(c.blockDecodes),
                static_cast<unsigned long long>(c.partialWriteRmws),
                c.overhead() * 100.0, seconds[i],
                serial[i] == parallel[i] ? "yes" : "NO");
        }
        std::printf("serial vs pool results bit-identical: %s\n",
                    all_identical ? "yes" : "NO");
    }
    return all_identical ? 0 : 1;
}
