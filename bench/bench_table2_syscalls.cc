/**
 * @file
 * Reproduces Table 2: the cost of the ECC monitoring system calls
 * (WatchMemory ~2.0 us, DisableWatchMemory ~1.5 us) against standard
 * page protection (mprotect ~1.02 us) on the simulated 2.4 GHz machine.
 *
 * Wall-clock time of the simulator is meaningless here; the quantity of
 * interest is *simulated* time, reported through google-benchmark user
 * counters and as a printed Table 2 summary.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/logging.h"
#include "common/types.h"
#include "os/machine.h"

namespace {

using namespace safemem;

/** Simulated microseconds of one WatchMemory call over @p lines lines. */
double
watchMicros(std::size_t lines)
{
    Machine machine;
    VirtAddr region =
        machine.kernel().mapRegion(lines * kCacheLineSize + kPageSize);
    Cycles before = machine.clock().now();
    machine.kernel().watchMemory(region, lines * kCacheLineSize);
    return cyclesToMicros(machine.clock().now() - before);
}

/** Simulated microseconds of one DisableWatchMemory call. */
double
disableMicros(std::size_t lines)
{
    Machine machine;
    VirtAddr region =
        machine.kernel().mapRegion(lines * kCacheLineSize + kPageSize);
    machine.kernel().watchMemory(region, lines * kCacheLineSize);
    Cycles before = machine.clock().now();
    machine.kernel().disableWatchMemory(region, lines * kCacheLineSize);
    return cyclesToMicros(machine.clock().now() - before);
}

/** Simulated microseconds of one mprotect call over @p pages pages. */
double
mprotectMicros(std::size_t pages)
{
    Machine machine;
    VirtAddr region = machine.kernel().mapRegion(pages * kPageSize);
    Cycles before = machine.clock().now();
    machine.kernel().mprotectRange(region, pages * kPageSize, false);
    return cyclesToMicros(machine.clock().now() - before);
}

void
BM_WatchMemory(benchmark::State &state)
{
    std::size_t lines = static_cast<std::size_t>(state.range(0));
    double us = 0.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(us = watchMicros(lines));
    state.counters["sim_us"] = us;
    state.counters["sim_us_per_line"] = us / static_cast<double>(lines);
}
BENCHMARK(BM_WatchMemory)->Arg(1)->Arg(8)->Arg(64)->Arg(128);

void
BM_DisableWatchMemory(benchmark::State &state)
{
    std::size_t lines = static_cast<std::size_t>(state.range(0));
    double us = 0.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(us = disableMicros(lines));
    state.counters["sim_us"] = us;
}
BENCHMARK(BM_DisableWatchMemory)->Arg(1)->Arg(8)->Arg(64)->Arg(128);

void
BM_Mprotect(benchmark::State &state)
{
    std::size_t pages = static_cast<std::size_t>(state.range(0));
    double us = 0.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(us = mprotectMicros(pages));
    state.counters["sim_us"] = us;
}
BENCHMARK(BM_Mprotect)->Arg(1)->Arg(4)->Arg(16);

} // namespace

int
main(int argc, char **argv)
{
    safemem::setLogQuiet(true);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\nTable 2: time for the ECC system calls "
                "(one cache line / one page)\n");
    std::printf("(paper: WatchMemory 2.0 us, DisableWatchMemory 1.5 us, "
                "mprotect 1.02 us)\n\n");
    std::printf("%-24s %14s\n", "call", "time (us)");
    std::printf("%-24s %14.2f\n", "WatchMemory", watchMicros(1));
    std::printf("%-24s %14.2f\n", "DisableWatchMemory", disableMicros(1));
    std::printf("%-24s %14.2f\n", "mprotect", mprotectMicros(1));
    return 0;
}
