/**
 * @file
 * Reproduces Figure 3: stability of the maximal lifetime of memory
 * object groups for ypserv, proftpd and squid under normal inputs.
 *
 * For each program, every memory-object group's WarmUpTime is the app
 * CPU time at which its maximal lifetime last changed. The bench prints
 * the cumulative distribution (percentage of stabilised groups vs
 * process execution time in seconds), which the paper shows saturating
 * within the first seconds of execution.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "workloads/driver.h"

using namespace safemem;

int
main()
{
    const Log quiet = Log::quiet();

    const std::vector<std::string> apps = {"ypserv1", "proftpd",
                                           "squid1"};
    std::vector<RunSpec> specs;
    for (const std::string &app : apps) {
        // Normal inputs, as in the paper.
        RunParams params = paperParams(app, false);
        params.log = &quiet;
        specs.push_back({app, ToolKind::SafeMemML, params});
    }
    std::vector<MatrixCell> cells = runMatrix(specs, /*workers=*/0);

    std::printf("Figure 3: stability of maximal lifetime "
                "(%% of stabilised memory object groups vs time)\n");
    std::printf("(paper: all groups reach their stable maximal lifetime "
                "early in the execution)\n\n");

    for (const MatrixCell &cell : cells) {
        const std::string &app = cell.spec.app;
        if (!cell.ok()) {
            std::printf("%s: run failed: %s\n", app.c_str(),
                        cell.error.c_str());
            return 1;
        }
        const RunResult &r = cell.result;
        std::vector<Cycles> warmups = r.stabilityWarmups;
        std::sort(warmups.begin(), warmups.end());

        double total_s =
            static_cast<double>(r.appCycles) / kCpuFrequencyHz;
        std::printf("%s: %zu groups with lifetime samples, app CPU time "
                    "%.2f s\n",
                    app.c_str(), warmups.size(), total_s);
        if (warmups.empty())
            continue;

        std::printf("  %-12s %s\n", "time (s)", "stabilised MOG (%)");
        for (double t : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2,
                         total_s}) {
            Cycles limit = static_cast<Cycles>(t * kCpuFrequencyHz);
            std::size_t below = static_cast<std::size_t>(
                std::upper_bound(warmups.begin(), warmups.end(), limit) -
                warmups.begin());
            std::printf("  %-12.2f %6.1f\n", t,
                        100.0 * static_cast<double>(below) /
                            static_cast<double>(warmups.size()));
        }
        std::printf("\n");
    }
    return 0;
}
