/**
 * @file
 * Fault-injection campaign over the ECC codec zoo: sweeps
 * {none, random, random-burst} x {1..8 errors} x {codec}, classifies
 * every decode as corrected / detected / miscorrected against ground
 * truth, and reports whether each codec can host SafeMem's scramble
 * signature. Classic Hamming 64/8 silently miscorrects double-bit
 * upsets and has no uncorrectable state — the headline negative result
 * explaining why the paper needs a SEC-DED code.
 *
 *   build/bench/bench_ecc_campaign                    # human-readable
 *   build/bench/bench_ecc_campaign --json             # JSON to stdout
 *   build/bench/bench_ecc_campaign --out FILE         # JSON to FILE
 *   build/bench/bench_ecc_campaign --samples 2000     # reduced load
 *   build/bench/bench_ecc_campaign --workers 4        # fixed fan-out
 *
 * Every invocation first re-runs the sweep at workers=1 and verifies
 * the fan-out produced bit-identical results (exit 1 otherwise) — the
 * same determinism contract bench_matrix enforces for run cells.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/thread_pool.h"
#include "workloads/campaign.h"

using namespace safemem;

int
main(int argc, char **argv)
{
    bool json = false;
    std::string out_path;
    CampaignConfig config;
    config.workers = 0; // all cores

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--samples" && i + 1 < argc) {
            config.samples = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--seed" && i + 1 < argc) {
            config.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--workers" && i + 1 < argc) {
            config.workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: bench_ecc_campaign [--json] [--out <file>] "
                         "[--samples <n>] [--seed <n>] [--workers <n>]\n");
            return 1;
        }
    }

    const CampaignResult result = runCampaign(config);

    // Determinism check: the same campaign serially must be identical.
    CampaignConfig serial = config;
    serial.workers = 1;
    const bool identical = runCampaign(serial) == result;
    if (!identical)
        std::fprintf(stderr,
                     "FAIL: parallel campaign differs from serial run\n");

    if (!out_path.empty()) {
        std::FILE *file = std::fopen(out_path.c_str(), "w");
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
            return 1;
        }
        const std::string doc = campaignJson(result);
        std::fwrite(doc.data(), 1, doc.size(), file);
        std::fclose(file);
        std::printf("wrote %s\n", out_path.c_str());
    } else if (json) {
        std::fputs(campaignJson(result).c_str(), stdout);
    } else {
        const unsigned resolved = ThreadPool::clampWorkers(
            config.workers,
            result.codecs.size() *
                (1 + 2 * static_cast<std::size_t>(config.maxErrors)));
        std::printf("ECC fault-injection campaign (seed %llu, "
                    "%llu samples/cell, %u workers)\n\n",
                    static_cast<unsigned long long>(config.seed),
                    static_cast<unsigned long long>(config.samples),
                    resolved);
        std::fputs(formatCampaignReport(result).c_str(), stdout);
        std::printf("parallel == serial: %s\n", identical ? "yes" : "NO");
    }
    return identical ? 0 : 1;
}
