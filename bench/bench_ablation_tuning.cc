/**
 * @file
 * Ablation: the leak detector's checking period (§3.2.2) and ECC
 * scrubbing (§2.2.2).
 *
 * Part 1 sweeps the checking period on a synthetic SLeak server:
 * shorter periods find the leak sooner but run more detection passes.
 *
 * Part 2 enables Correct-and-Scrub at several periods and measures the
 * cost of the unwatch-all / scrub / rewatch dance with live watches.
 */

#include <cstdio>

#include "alloc/heap_allocator.h"
#include "common/logging.h"
#include "common/random.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

using namespace safemem;

namespace {

/** A small SLeak server: frees replies except on 5% error paths. */
Cycles
runLeakServer(SafeMemTool &tool, Machine &machine, ShadowStack &stack,
              std::uint64_t requests)
{
    Rng rng(77);
    for (std::uint64_t r = 0; r < requests; ++r) {
        VirtAddr reply = tool.toolAlloc(192, stack, 1 | (1ULL << 63));
        machine.store<std::uint64_t>(reply, r);
        machine.compute(8'000);
        if (!rng.chance(0.05))
            tool.toolFree(reply);
    }
    tool.finish();
    return machine.clock().charged(CostCenter::Application);
}

} // namespace

int
main()
{
    setLogQuiet(true);

    std::printf("Ablation 1: checking period vs detection latency "
                "(synthetic SLeak server)\n\n");
    std::printf("%-18s %16s %18s %16s\n", "period (cycles)",
                "detected at req", "detection passes", "ML cycles");
    for (Cycles period : {5'000u, 20'000u, 100'000u, 500'000u}) {
        Machine machine;
        HeapAllocator allocator(machine);
        EccWatchManager backend(machine);
        backend.installFaultHandler();

        SafeMemConfig config;
        config.detectCorruption = false;
        config.checkingPeriod = period;
        config.warmupTime = 100'000;
        config.minStableTime = 50'000;
        config.leakReportThreshold = 400'000;
        SafeMemTool tool(machine, allocator, backend, config);
        ShadowStack stack;
        runLeakServer(tool, machine, stack, 3000);

        const LeakDetector &detector = tool.leakDetector();
        long long detected_req = -1;
        if (!detector.reports().empty())
            detected_req = static_cast<long long>(
                detector.reports()[0].reportTime / 8'000);
        std::printf("%-18llu %16lld %18llu %16llu\n",
                    static_cast<unsigned long long>(period), detected_req,
                    static_cast<unsigned long long>(
                        detector.stats().get("detection_passes")),
                    static_cast<unsigned long long>(
                        machine.clock().charged(CostCenter::ToolLeak)));
    }

    std::printf("\nAblation 2: scrub period with live watches "
                "(8 MiB DRAM, 32 watched lines)\n\n");
    std::printf("%-20s %14s %18s %20s\n", "period (Mcycles)",
                "scrub passes", "park/restore ops", "kernel cycles");
    for (unsigned period_m : {2u, 8u, 32u}) {
        Machine machine(MachineConfig{8u << 20, CacheConfig{64, 4}, 256});
        HeapAllocator allocator(machine);
        EccWatchManager backend(machine);
        backend.installFaultHandler();
        backend.installScrubHooks();

        // Arm some watches, then generate plain activity.
        std::vector<VirtAddr> regions;
        for (int i = 0; i < 32; ++i) {
            VirtAddr region = machine.kernel().mapRegion(kPageSize);
            backend.watch(region, kCacheLineSize, WatchKind::FreedBuffer,
                          static_cast<std::uint64_t>(i));
            regions.push_back(region);
        }
        machine.kernel().enableScrubbing(period_m * 1'000'000);

        VirtAddr scratch = machine.kernel().mapRegion(16 * kPageSize);
        for (int i = 0; i < 60'000; ++i) {
            machine.store<std::uint64_t>(
                scratch + (i % 2048) * 8, static_cast<std::uint64_t>(i));
            machine.compute(1'000);
        }

        std::printf("%-20u %14llu %18llu %20llu\n", period_m,
                    static_cast<unsigned long long>(
                        machine.kernel().stats().get("scrub_passes")),
                    static_cast<unsigned long long>(
                        backend.stats().get("regions_swap_parked") +
                        backend.stats().get("scrub_unwatch_passes")),
                    static_cast<unsigned long long>(
                        machine.clock().charged(CostCenter::Kernel)));
        for (VirtAddr region : regions)
            backend.unwatch(region);
    }
    std::printf("\nScrubbing all of DRAM is expensive; real deployments "
                "scrub rarely and\nidle-time only, exactly as the paper "
                "assumes.\n");
    return 0;
}
