/**
 * @file
 * The fleet-scale sampled-monitoring benchmark behind BENCH_fleet.json:
 * N consolidated squid2 tenants (the use-after-free server) per run,
 * swept over monitoring configurations — uninstrumented, full SafeMem,
 * Purify, SampledSafeMem at several rates — and over seeds, comparing
 * overhead, detection probability, and time-to-first-catch.
 *
 * The JSON output carries no wall-clock fields, so the same
 * configuration printed from any --workers count compares byte-equal —
 * the property the CI fleet-smoke stage enforces with cmp(1). The
 * worker-count identity check itself runs inside runFleet() (the whole
 * matrix re-executed with a different pool size) and the process exits
 * non-zero when any result moved.
 *
 *   build/bench/bench_fleet                 # human-readable table
 *   build/bench/bench_fleet --json          # BENCH_fleet.json shape
 *   build/bench/bench_fleet --procs 4 --seeds 2 --requests 120  # smoke
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/logging.h"
#include "workloads/fleet.h"

using namespace safemem;

int
main(int argc, char **argv)
{
    bool json = false;
    FleetConfig config;
    config.requests = 300;
    config.workers = 0;       // all cores
    config.verifyWorkers = 1; // serial re-run proves pool independence

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--requests" && i + 1 < argc) {
            config.requests = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--seeds" && i + 1 < argc) {
            config.seeds = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--procs" && i + 1 < argc) {
            config.procs = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--workers" && i + 1 < argc) {
            config.workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--no-verify") {
            config.verifyWorkers = 0;
        } else {
            std::fprintf(stderr,
                         "usage: bench_fleet [--json] [--requests <n>] "
                         "[--seeds <n>] [--procs <n>] [--workers <n>] "
                         "[--no-verify]\n");
            return 1;
        }
    }

    const Log quiet = Log::quiet();
    config.log = &quiet;
    // The verify pass must use a different pool size than the primary
    // pass or it proves nothing.
    if (config.verifyWorkers == config.workers)
        config.verifyWorkers = config.workers == 1 ? 2 : 1;

    FleetResult result;
    try {
        result = runFleet(config);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "bench_fleet: %s\n", err.what());
        return 1;
    }

    if (json)
        std::fputs(fleetJson(result).c_str(), stdout);
    else
        std::fputs(formatFleetReport(result).c_str(), stdout);
    return result.identical ? 0 : 1;
}
