/**
 * @file
 * Reproduces Table 4: memory-space overhead of ECC-protection vs
 * page-protection monitoring, per application (normal inputs).
 *
 * Overhead is padding + alignment waste as a percentage of the bytes
 * the application actually requested over the whole execution. The
 * paper reports ECC protection reducing the waste by 64-74x.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "workloads/driver.h"

using namespace safemem;

int
main()
{
    const Log quiet = Log::quiet();

    std::vector<RunSpec> specs;
    for (const std::string &app : appNames()) {
        RunParams params = paperParams(app, false);
        params.log = &quiet;
        specs.push_back({app, ToolKind::SafeMemBoth, params});
        specs.push_back({app, ToolKind::PageProtBoth, params});
    }
    std::vector<MatrixCell> cells = runMatrix(specs, /*workers=*/0);

    std::printf("Table 4: space overhead (%%) of ECC-protection vs "
                "page-protection\n");
    std::printf("(paper: ECC 0.084%%-334%%, page 6.06%%-hundreds-x; "
                "reduction 64-74X)\n\n");
    std::printf("%-8s %14s %15s %11s\n", "app", "ECC-prot(%)",
                "page-prot(%)", "reduction");

    for (std::size_t i = 0; i < cells.size(); i += 2) {
        const std::string &app = cells[i].spec.app;
        if (!cells[i].ok() || !cells[i + 1].ok()) {
            std::printf("%-8s run failed: %s\n", app.c_str(),
                        (cells[i].ok() ? cells[i + 1] : cells[i])
                            .error.c_str());
            return 1;
        }
        double ecc_pct = cells[i].result.wastePercent();
        double page_pct = cells[i + 1].result.wastePercent();
        double reduction = ecc_pct > 0.0 ? page_pct / ecc_pct : 0.0;

        std::printf("%-8s %14.2f %15.2f %10.1fX\n", app.c_str(), ecc_pct,
                    page_pct, reduction);
    }
    return 0;
}
