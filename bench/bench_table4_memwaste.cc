/**
 * @file
 * Reproduces Table 4: memory-space overhead of ECC-protection vs
 * page-protection monitoring, per application (normal inputs).
 *
 * Overhead is padding + alignment waste as a percentage of the bytes
 * the application actually requested over the whole execution. The
 * paper reports ECC protection reducing the waste by 64-74x.
 */

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "workloads/driver.h"

using namespace safemem;

int
main()
{
    setLogQuiet(true);

    std::printf("Table 4: space overhead (%%) of ECC-protection vs "
                "page-protection\n");
    std::printf("(paper: ECC 0.084%%-334%%, page 6.06%%-hundreds-x; "
                "reduction 64-74X)\n\n");
    std::printf("%-8s %14s %15s %11s\n", "app", "ECC-prot(%)",
                "page-prot(%)", "reduction");

    for (const std::string &app : appNames()) {
        RunParams params;
        params.requests = defaultRequests(app);
        params.seed = 42;
        params.buggy = false;

        RunResult ecc = runWorkload(app, ToolKind::SafeMemBoth, params);
        RunResult page = runWorkload(app, ToolKind::PageProtBoth, params);

        double ecc_pct = ecc.wastePercent();
        double page_pct = page.wastePercent();
        double reduction = ecc_pct > 0.0 ? page_pct / ecc_pct : 0.0;

        std::printf("%-8s %14.2f %15.2f %10.1fX\n", app.c_str(), ecc_pct,
                    page_pct, reduction);
    }
    return 0;
}
