/**
 * @file
 * Reproduces Table 5: leak false positives reported before vs after
 * ECC-protection pruning, for the four leak applications (buggy runs).
 *
 * "Before" counts every non-bug memory-object group the outlier
 * detector ever suspected — what would be reported without pruning.
 * "After" counts non-bug groups still reported once suspects had to
 * stay untouched past the report threshold.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "workloads/driver.h"

using namespace safemem;

int
main()
{
    const Log quiet = Log::quiet();

    const std::vector<std::string> leak_apps = {"ypserv1", "proftpd",
                                                "squid1", "ypserv2"};
    std::vector<RunSpec> specs;
    for (const std::string &app : leak_apps) {
        RunParams params = paperParams(app, true);
        params.log = &quiet;
        specs.push_back({app, ToolKind::SafeMemBoth, params});
    }
    std::vector<MatrixCell> cells = runMatrix(specs, /*workers=*/0);

    std::printf("Table 5: false memory leaks before/after ECC pruning\n");
    std::printf("(paper: ypserv1 7->0, proftpd 9->0, squid1 13->1, "
                "ypserv2 2->0)\n\n");
    std::printf("%-8s %16s %15s %18s\n", "app", "before-pruning",
                "after-pruning", "suspects-pruned");

    for (const MatrixCell &cell : cells) {
        if (!cell.ok()) {
            std::printf("%-8s run failed: %s\n", cell.spec.app.c_str(),
                        cell.error.c_str());
            return 1;
        }
        const RunResult &r = cell.result;
        std::printf("%-8s %16llu %15llu %18llu\n", cell.spec.app.c_str(),
                    static_cast<unsigned long long>(r.suspectedFalse),
                    static_cast<unsigned long long>(r.leakReportsFalse),
                    static_cast<unsigned long long>(r.prunedSuspects));
    }
    return 0;
}
