/**
 * @file
 * Ablation: guard-padding width (paper §2.2.3 discusses the trade-off;
 * §4 notes "it could easily use longer paddings, but ... the current
 * setting is good enough").
 *
 * Sweeps 1, 2 and 4 guard lines per side and measures (a) how far past
 * the buffer an overflow can land and still be caught, and (b) the
 * memory waste the padding costs on a mixed allocation profile.
 */

#include <cstdio>
#include <vector>

#include "alloc/heap_allocator.h"
#include "common/logging.h"
#include "common/random.h"
#include "safemem/safemem.h"
#include "safemem/watch_manager.h"

using namespace safemem;

namespace {

struct Outcome
{
    double wastePct = 0.0;
    std::size_t maxCaughtOffset = 0; ///< bytes past the end still caught
};

Outcome
runWith(std::uint32_t padding_granules)
{
    Outcome outcome;

    // (a) Detection reach: overflow at increasing distances, fresh
    // buffer each time so guards are re-armed.
    for (std::size_t distance = 8; distance <= 512; distance += 8) {
        Machine machine;
        HeapAllocator allocator(machine);
        EccWatchManager backend(machine);
        backend.installFaultHandler();
        SafeMemConfig config;
        config.detectLeaks = false;
        config.paddingGranules = padding_granules;
        SafeMemTool tool(machine, allocator, backend, config);
        ShadowStack stack;

        VirtAddr buffer = tool.toolAlloc(256, stack, 1);
        // Stray write `distance` bytes past the rounded body end.
        machine.store<std::uint64_t>(buffer + 256 + distance - 8, 1);
        bool caught = !tool.corruptionDetector().reports().empty();
        tool.toolFree(buffer);
        tool.finish();
        if (caught)
            outcome.maxCaughtOffset = distance;
    }

    // (b) Waste on a mixed profile.
    {
        Machine machine;
        HeapAllocator allocator(machine);
        EccWatchManager backend(machine);
        backend.installFaultHandler();
        SafeMemConfig config;
        config.detectLeaks = false;
        config.paddingGranules = padding_granules;
        SafeMemTool tool(machine, allocator, backend, config);
        ShadowStack stack;
        Rng rng(9);

        std::vector<VirtAddr> buffers;
        for (int i = 0; i < 300; ++i)
            buffers.push_back(
                tool.toolAlloc(rng.range(16, 2048), stack, 1));
        for (VirtAddr buffer : buffers)
            tool.toolFree(buffer);
        const CorruptionDetector &detector = tool.corruptionDetector();
        outcome.wastePct =
            100.0 *
            static_cast<double>(detector.cumulativeWasteBytes()) /
            static_cast<double>(detector.cumulativeUserBytes());
        tool.finish();
    }
    return outcome;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    std::printf("Ablation: guard padding width (ECC backend, 64 B "
                "granule)\n\n");
    std::printf("%-14s %20s %14s\n", "guard lines",
                "overflow reach (B)", "waste (%)");
    for (std::uint32_t granules : {1u, 2u, 4u}) {
        Outcome outcome = runWith(granules);
        std::printf("%-14u %20zu %14.1f\n", granules,
                    outcome.maxCaughtOffset, outcome.wastePct);
    }
    std::printf("\nOne guard line per side catches overflows within 64 "
                "bytes of the\nbuffer at the lowest waste — the paper's "
                "chosen setting.\n");
    return 0;
}
