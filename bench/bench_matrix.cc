/**
 * @file
 * Measures the parallel run-matrix harness: wall-clock of the full
 * Table 3 matrix (7 apps x 6 tool configurations) executed serially
 * (workers=1) vs in parallel, and verifies the two sweeps produce
 * bit-identical results cell for cell.
 *
 *   build/bench/bench_matrix                  # human-readable
 *   build/bench/bench_matrix --json           # BENCH_matrix.json shape
 *   build/bench/bench_matrix --requests 200   # reduced load (CI smoke)
 *   build/bench/bench_matrix --workers 2      # fixed fan-out
 *
 * The speedup scales with available cores; on a single-core host the
 * parallel sweep degenerates to time-sliced serial execution and the
 * ratio stays near 1.0 (hardware_threads in the JSON records this).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "workloads/driver.h"

using namespace safemem;

namespace {

/** The full Table 3 matrix; @p requests 0 keeps the paper defaults. */
std::vector<RunSpec>
table3Specs(const Log &quiet, std::uint64_t requests)
{
    std::vector<RunSpec> specs;
    for (const std::string &app : appNames()) {
        for (bool buggy : {true, false}) {
            RunParams params = paperParams(app, buggy);
            if (requests != 0)
                params.requests = requests;
            params.log = &quiet;
            if (buggy) {
                specs.push_back({app, ToolKind::SafeMemBoth, params});
                continue;
            }
            for (ToolKind tool :
                 {ToolKind::None, ToolKind::SafeMemML, ToolKind::SafeMemMC,
                  ToolKind::SafeMemBoth, ToolKind::Purify})
                specs.push_back({app, tool, params});
        }
    }
    return specs;
}

double
timedRun(const std::vector<RunSpec> &specs, unsigned workers,
         std::vector<MatrixCell> &cells)
{
    const auto start = std::chrono::steady_clock::now();
    cells = runMatrix(specs, workers);
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::uint64_t requests = 0; // 0 = paper defaults
    unsigned workers = 0;       // 0 = all cores

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--requests" && i + 1 < argc) {
            requests = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--workers" && i + 1 < argc) {
            workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: bench_matrix [--json] [--requests <n>] "
                         "[--workers <n>]\n");
            return 1;
        }
    }

    const Log quiet = Log::quiet();
    const std::vector<RunSpec> specs = table3Specs(quiet, requests);
    const unsigned resolved =
        ThreadPool::clampWorkers(workers, specs.size());

    std::vector<MatrixCell> serial;
    std::vector<MatrixCell> parallel;
    const double serial_s = timedRun(specs, 1, serial);
    const double parallel_s = timedRun(specs, resolved, parallel);

    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
        if (!serial[i].ok() || !parallel[i].ok() ||
            !(serial[i].result == parallel[i].result))
            identical = false;
    }

    const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    const unsigned hw = std::thread::hardware_concurrency();

    if (json) {
        std::printf("{\n");
        std::printf("  \"bench\": \"matrix\",\n");
        std::printf("  \"cells\": %zu,\n", specs.size());
        std::printf("  \"requests\": %llu,\n",
                    static_cast<unsigned long long>(requests));
        std::printf("  \"workers\": %u,\n", resolved);
        std::printf("  \"hardware_threads\": %u,\n", hw);
        std::printf("  \"serial_seconds\": %.3f,\n", serial_s);
        std::printf("  \"parallel_seconds\": %.3f,\n", parallel_s);
        std::printf("  \"speedup\": %.2f,\n", speedup);
        std::printf("  \"identical\": %s\n", identical ? "true" : "false");
        std::printf("}\n");
    } else {
        std::printf("run matrix: %zu cells (Table 3 sweep%s)\n",
                    specs.size(),
                    requests != 0 ? ", reduced requests" : "");
        std::printf("  serial   (workers=1):  %7.3f s\n", serial_s);
        std::printf("  parallel (workers=%u): %7.3f s  (%u hw threads)\n",
                    resolved, parallel_s, hw);
        std::printf("  speedup: %.2fx, results bit-identical: %s\n",
                    speedup, identical ? "yes" : "NO");
    }
    return identical ? 0 : 1;
}
